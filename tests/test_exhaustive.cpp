#include "boundary/exhaustive.h"

#include <vector>

#include <gtest/gtest.h>

#include "fi/fpbits.h"

namespace ftb::boundary {
namespace {

using fi::Outcome;

/// Builds a one-site outcome table by classifying each bit flip of `value`
/// with a rule on the injected error.
template <typename Rule>
std::vector<Outcome> one_site_outcomes(double value, Rule rule) {
  std::vector<Outcome> outcomes(fi::kBitsPerValue, Outcome::kMasked);
  for (int bit = 0; bit < fi::kBitsPerValue; ++bit) {
    if (fi::flip_is_nonfinite(value, bit)) {
      outcomes[bit] = Outcome::kCrash;
    } else {
      outcomes[bit] = rule(fi::bit_flip_error(value, bit));
    }
  }
  return outcomes;
}

TEST(Exhaustive, MonotoneSiteThresholdSitsAtTheKnee) {
  // All errors <= 0.001 masked, everything larger SDC.
  const double value = 1.0;
  const auto outcomes = one_site_outcomes(value, [](double e) {
    return e <= 1e-3 ? Outcome::kMasked : Outcome::kSdc;
  });
  const std::vector<double> trace = {value};
  const FaultToleranceBoundary boundary = exhaustive_boundary(outcomes, trace);
  ASSERT_EQ(boundary.sites(), 1u);
  EXPECT_TRUE(boundary.is_exact(0));
  // The threshold is the largest bit-flip error <= 1e-3 at value 1.0.
  double expected = 0.0;
  for (int bit = 0; bit < fi::kBitsPerValue; ++bit) {
    const double e = fi::bit_flip_error(value, bit);
    if (std::isfinite(e) && e <= 1e-3 && e > expected) expected = e;
  }
  EXPECT_DOUBLE_EQ(boundary.threshold(0), expected);
  EXPECT_GT(expected, 0.0);
}

TEST(Exhaustive, AllMaskedSiteGetsLargestFiniteError) {
  const double value = 2.5;
  const auto outcomes =
      one_site_outcomes(value, [](double) { return Outcome::kMasked; });
  const std::vector<double> trace = {value};
  const FaultToleranceBoundary boundary = exhaustive_boundary(outcomes, trace);
  double expected = 0.0;
  for (int bit = 0; bit < fi::kBitsPerValue; ++bit) {
    if (!fi::flip_is_nonfinite(value, bit)) {
      expected = std::max(expected, fi::bit_flip_error(value, bit));
    }
  }
  EXPECT_DOUBLE_EQ(boundary.threshold(0), expected);
}

TEST(Exhaustive, AllSdcSiteHasZeroThreshold) {
  const double value = -1.75;
  const auto outcomes =
      one_site_outcomes(value, [](double) { return Outcome::kSdc; });
  const std::vector<double> trace = {value};
  const FaultToleranceBoundary boundary = exhaustive_boundary(outcomes, trace);
  EXPECT_DOUBLE_EQ(boundary.threshold(0), 0.0);
}

TEST(Exhaustive, NonMonotonicMaskedAboveSdcIsExcluded) {
  // Masked for e <= 1e-6 and for e in (1.0, 100.0); SDC in between.  The
  // paper's rule keeps only the masked region below the smallest SDC error.
  const double value = 1.0;
  const auto outcomes = one_site_outcomes(value, [](double e) {
    if (e <= 1e-6) return Outcome::kMasked;
    if (e > 1.0 && e < 100.0) return Outcome::kMasked;  // non-monotonic blob
    return Outcome::kSdc;
  });
  const std::vector<double> trace = {value};
  const FaultToleranceBoundary boundary = exhaustive_boundary(outcomes, trace);
  EXPECT_LE(boundary.threshold(0), 1e-6);
  EXPECT_GT(boundary.threshold(0), 0.0);
}

TEST(Exhaustive, CrashesNeverConstrainTheThreshold) {
  // Crash everywhere except two masked mantissa flips.
  const double value = 3.0;
  std::vector<Outcome> outcomes(fi::kBitsPerValue, Outcome::kCrash);
  outcomes[0] = Outcome::kMasked;
  outcomes[10] = Outcome::kMasked;
  const std::vector<double> trace = {value};
  const FaultToleranceBoundary boundary = exhaustive_boundary(outcomes, trace);
  EXPECT_DOUBLE_EQ(boundary.threshold(0),
                   std::max(fi::bit_flip_error(value, 0),
                            fi::bit_flip_error(value, 10)));
}

TEST(Exhaustive, MultiSiteIndependence) {
  const std::vector<double> trace = {1.0, 4.0};
  std::vector<Outcome> outcomes(2 * fi::kBitsPerValue, Outcome::kSdc);
  // At each site only the LSB flip is masked -- its error is the smallest
  // possible at that value, so it survives the strictly-below-min-SDC rule.
  outcomes[0] = Outcome::kMasked;
  outcomes[fi::kBitsPerValue + 0] = Outcome::kMasked;
  const FaultToleranceBoundary boundary = exhaustive_boundary(outcomes, trace);
  EXPECT_GT(boundary.threshold(0), 0.0);
  EXPECT_GT(boundary.threshold(1), 0.0);
  EXPECT_NE(boundary.threshold(0), boundary.threshold(1));
}

}  // namespace
}  // namespace ftb::boundary
