#include "fi/executor.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "fi/fpbits.h"
#include "kernels/blas1.h"

namespace ftb::fi {
namespace {

kernels::DaxpyProgram small_daxpy() {
  kernels::DaxpyConfig config;
  config.n = 8;
  return kernels::DaxpyProgram(config);
}

TEST(Executor, GoldenRunShape) {
  const auto program = small_daxpy();
  const GoldenRun golden = run_golden(program);
  // daxpy: n x-fills + n y-fills + n updates.
  EXPECT_EQ(golden.dynamic_instructions(), 24u);
  EXPECT_EQ(golden.output.size(), 8u);
  EXPECT_EQ(golden.sample_space_size(), 24u * 64u);
  EXPECT_GT(golden.tolerance, 0.0);
  for (double v : golden.trace) EXPECT_TRUE(std::isfinite(v));
}

TEST(Executor, CountMatchesGoldenTrace) {
  const auto program = small_daxpy();
  EXPECT_EQ(count_dynamic_instructions(program),
            run_golden(program).dynamic_instructions());
}

TEST(Executor, GoldenRunIsDeterministic) {
  const auto program = small_daxpy();
  const GoldenRun a = run_golden(program);
  const GoldenRun b = run_golden(program);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.output, b.output);
}

TEST(Executor, TinyFlipIsMasked) {
  const auto program = small_daxpy();
  const GoldenRun golden = run_golden(program);
  // Flip the least-significant mantissa bit of the first x element: the
  // perturbation is ~1 ulp, far below the program tolerance.
  const ExperimentResult result =
      run_injected(program, golden, Injection::bit_flip(0, 0));
  EXPECT_EQ(result.outcome, Outcome::kMasked);
  EXPECT_GT(result.injected_error, 0.0);
  EXPECT_LE(result.output_error, golden.tolerance);
}

TEST(Executor, LargeFlipOnOutputElementIsSdc) {
  const auto program = small_daxpy();
  const GoldenRun golden = run_golden(program);
  // The last n dynamic instructions are the y updates that become the
  // output; flipping a high exponent bit of one of them (avoiding the
  // nonfinite top bit) corrupts the output directly.
  const std::uint64_t site = golden.dynamic_instructions() - 1;
  const ExperimentResult result =
      run_injected(program, golden, Injection::bit_flip(site, 55));
  EXPECT_EQ(result.outcome, Outcome::kSdc);
  EXPECT_GT(result.output_error, golden.tolerance);
}

TEST(Executor, NonFiniteInjectionIsCrash) {
  const auto program = small_daxpy();
  const GoldenRun golden = run_golden(program);
  const ExperimentResult result = run_injected(
      program, golden,
      Injection::set_value(3, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(result.outcome, Outcome::kCrash);
  EXPECT_TRUE(std::isinf(result.output_error));
}

TEST(Executor, CompareModeMatchesPlainOutcome) {
  const auto program = small_daxpy();
  const GoldenRun golden = run_golden(program);
  std::vector<double> diffs(golden.trace.size());
  for (std::uint64_t site : {0ull, 5ull, 16ull, 23ull}) {
    for (int bit : {0, 30, 55, 63}) {
      const Injection injection = Injection::bit_flip(site, bit);
      const ExperimentResult plain = run_injected(program, golden, injection);
      const ExperimentResult compared =
          run_injected_compare(program, golden, injection, diffs);
      EXPECT_EQ(plain.outcome, compared.outcome) << site << ":" << bit;
      EXPECT_DOUBLE_EQ(plain.injected_error, compared.injected_error);
      EXPECT_DOUBLE_EQ(plain.output_error, compared.output_error);
    }
  }
}

TEST(Executor, CompareDiffsZeroBeforeInjection) {
  const auto program = small_daxpy();
  const GoldenRun golden = run_golden(program);
  std::vector<double> diffs(golden.trace.size(), 123.0);  // poisoned
  const std::uint64_t site = 10;
  (void)run_injected_compare(program, golden, Injection::bit_flip(site, 52),
                             diffs);
  for (std::uint64_t i = 0; i < site; ++i) {
    EXPECT_EQ(diffs[i], 0.0) << i;
  }
  EXPECT_GT(diffs[site], 0.0);
}

TEST(Executor, PropagationReachesDependentInstruction) {
  const auto program = small_daxpy();
  const GoldenRun golden = run_golden(program);
  std::vector<double> diffs(golden.trace.size());
  // x[2] feeds only the update at site 16 + 2.
  (void)run_injected_compare(program, golden, Injection::bit_flip(2, 51),
                             diffs);
  EXPECT_GT(diffs[2], 0.0);
  EXPECT_GT(diffs[18], 0.0);   // y[2] update sees alpha * corrupted x[2]
  EXPECT_EQ(diffs[17], 0.0);   // unrelated element untouched
}

}  // namespace
}  // namespace ftb::fi
