#include "boundary/protection.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "boundary/accumulator.h"
#include "boundary/predictor.h"
#include "fi/fpbits.h"
#include "fi/outcome.h"

namespace ftb::boundary {
namespace {

/// Three-site setup with distinct, known vulnerability levels:
///   site 0: unknown boundary (threshold 0) -> many predicted-SDC bits,
///   site 1: generous threshold            -> few predicted-SDC bits,
///   site 2: effectively unbounded         -> zero predicted-SDC bits.
struct Fixture {
  std::vector<double> trace = {1.0, 1.0, 1.0};
  FaultToleranceBoundary boundary{
      std::vector<double>{0.0, 0.5, FaultToleranceBoundary::kUnbounded}};

  std::uint32_t sdc_bits(std::size_t site) const {
    return predict_site(boundary, site, trace[site]).sdc;
  }
};

TEST(ProtectionBudget, PicksHighestContributorsFirst) {
  Fixture s;
  const ProtectionPlan plan = plan_with_budget(s.boundary, s.trace, 0.34);
  ASSERT_EQ(plan.sites.size(), 1u);
  EXPECT_EQ(plan.sites[0], 0u);  // the unknown site dominates
  EXPECT_LT(plan.sdc_after, plan.sdc_before);
  EXPECT_NEAR(plan.cost_fraction, 1.0 / 3.0, 1e-12);
}

TEST(ProtectionBudget, ZeroBudgetProtectsNothing) {
  Fixture s;
  const ProtectionPlan plan = plan_with_budget(s.boundary, s.trace, 0.0);
  EXPECT_TRUE(plan.sites.empty());
  EXPECT_DOUBLE_EQ(plan.sdc_after, plan.sdc_before);
  EXPECT_DOUBLE_EQ(plan.coverage(), 0.0);
}

TEST(ProtectionBudget, FullBudgetRemovesEverything) {
  Fixture s;
  const ProtectionPlan plan = plan_with_budget(s.boundary, s.trace, 1.0);
  EXPECT_DOUBLE_EQ(plan.sdc_after, 0.0);
  EXPECT_DOUBLE_EQ(plan.coverage(), 1.0);
  // Site 2 contributes nothing, so it is never listed.
  EXPECT_EQ(std::count(plan.sites.begin(), plan.sites.end(), 2u), 0);
}

TEST(ProtectionBudget, AccountingMatchesPredictor) {
  Fixture s;
  const ProtectionPlan plan = plan_with_budget(s.boundary, s.trace, 1.0);
  const double denom = 3.0 * fi::kBitsPerValue;
  const double expected_before =
      (s.sdc_bits(0) + s.sdc_bits(1) + s.sdc_bits(2)) / denom;
  EXPECT_NEAR(plan.sdc_before, expected_before, 1e-12);
  EXPECT_NEAR(plan.sdc_before,
              predicted_overall_sdc(s.boundary, s.trace), 1e-12);
}

TEST(ProtectionTarget, StopsAsSoonAsTargetIsMet) {
  Fixture s;
  // Target: everything below what removing site 0 alone achieves.
  const double denom = 3.0 * fi::kBitsPerValue;
  const double after_site0 = (s.sdc_bits(1) + s.sdc_bits(2)) / denom;
  const ProtectionPlan plan =
      plan_to_target(s.boundary, s.trace, after_site0 + 1e-9);
  ASSERT_EQ(plan.sites.size(), 1u);
  EXPECT_EQ(plan.sites[0], 0u);
  EXPECT_LE(plan.sdc_after, after_site0 + 1e-9);
}

TEST(ProtectionTarget, UnreachableTargetProtectsAllContributors) {
  Fixture s;
  const ProtectionPlan plan = plan_to_target(s.boundary, s.trace, 0.0);
  EXPECT_DOUBLE_EQ(plan.sdc_after, 0.0);
  EXPECT_EQ(plan.sites.size(), 2u);  // sites 0 and 1; site 2 contributes 0
}

TEST(ProtectionTarget, AlreadyMetTargetNeedsNoProtection) {
  Fixture s;
  const ProtectionPlan plan = plan_to_target(s.boundary, s.trace, 1.0);
  EXPECT_TRUE(plan.sites.empty());
}

TEST(ProtectionWithDetector, DetectedHeavySitesAreDeprioritized) {
  // Two sites with identical masked-propagation evidence; the same
  // corruptions are *silent* at site 0 (kSdc) but *caught* at site 1
  // (kDetected).  Detected evidence never feeds the silent-corruption
  // boundary, so site 1 keeps its generous masked threshold while site 0's
  // SDC evidence (via the Section 3.5 filter) clamps its threshold down --
  // and the protection planner must therefore spend its budget on site 0.
  const std::vector<double> trace = {1.0, 1.0};
  AccumulatorOptions options;
  options.filter = true;
  BoundaryAccumulator acc(2, options);
  acc.record_injection(0, 52, fi::Outcome::kSdc, 0.01);
  acc.record_injection(1, 52, fi::Outcome::kDetected, 0.01);
  const std::vector<double> diffs = {0.5, 0.5};
  acc.record_masked_propagation(diffs);
  const FaultToleranceBoundary shifted = acc.finalize();

  // The detector-heavy site ends up with the larger threshold...
  EXPECT_LT(shifted.threshold(0), shifted.threshold(1));
  // ...so a one-site budget goes to the SDC-heavy site.
  const ProtectionPlan plan = plan_with_budget(shifted, trace, 0.5);
  ASSERT_EQ(plan.sites.size(), 1u);
  EXPECT_EQ(plan.sites[0], 0u);

  // Coverage bookkeeping: site 1's wrong outputs were all caught.
  EXPECT_DOUBLE_EQ(acc.detected_coverage(0), 0.0);
  EXPECT_DOUBLE_EQ(acc.detected_coverage(1), 1.0);
  EXPECT_EQ(acc.total_detected(), 1u);
  EXPECT_EQ(acc.total_sdc(), 1u);
  const std::vector<double> profile = acc.coverage_profile();
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_DOUBLE_EQ(profile[1], 1.0);

  // Without the detector the same experiments classify kSdc at both sites
  // and the planner sees them as equally urgent: both get protected under
  // a full budget, and site 1's threshold collapses to site 0's.
  BoundaryAccumulator no_det(2, options);
  no_det.record_injection(0, 52, fi::Outcome::kSdc, 0.01);
  no_det.record_injection(1, 52, fi::Outcome::kSdc, 0.01);
  no_det.record_masked_propagation(diffs);
  const FaultToleranceBoundary plain = no_det.finalize();
  EXPECT_DOUBLE_EQ(plain.threshold(0), plain.threshold(1));
  EXPECT_EQ(plan_with_budget(plain, trace, 1.0).sites.size(), 2u);
}

class ProtectionCoverageSweep : public ::testing::TestWithParam<double> {};

TEST_P(ProtectionCoverageSweep, CoverageMonotoneInBudget) {
  // Property: more budget never reduces coverage.
  std::vector<double> trace(64, 1.0);
  std::vector<double> thresholds(64);
  for (std::size_t i = 0; i < 64; ++i) {
    thresholds[i] = i % 7 == 0 ? 0.0 : 1e-3 * static_cast<double>(i);
  }
  const FaultToleranceBoundary boundary(std::move(thresholds));

  const double budget = GetParam();
  const ProtectionPlan smaller = plan_with_budget(boundary, trace, budget);
  const ProtectionPlan larger =
      plan_with_budget(boundary, trace, std::min(1.0, budget + 0.2));
  EXPECT_GE(larger.coverage() + 1e-12, smaller.coverage());
  EXPECT_GE(larger.sites.size(), smaller.sites.size());
}

INSTANTIATE_TEST_SUITE_P(Budgets, ProtectionCoverageSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.8));

}  // namespace
}  // namespace ftb::boundary
