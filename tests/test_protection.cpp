#include "boundary/protection.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "boundary/predictor.h"
#include "fi/fpbits.h"

namespace ftb::boundary {
namespace {

/// Three-site setup with distinct, known vulnerability levels:
///   site 0: unknown boundary (threshold 0) -> many predicted-SDC bits,
///   site 1: generous threshold            -> few predicted-SDC bits,
///   site 2: effectively unbounded         -> zero predicted-SDC bits.
struct Fixture {
  std::vector<double> trace = {1.0, 1.0, 1.0};
  FaultToleranceBoundary boundary{
      std::vector<double>{0.0, 0.5, FaultToleranceBoundary::kUnbounded}};

  std::uint32_t sdc_bits(std::size_t site) const {
    return predict_site(boundary, site, trace[site]).sdc;
  }
};

TEST(ProtectionBudget, PicksHighestContributorsFirst) {
  Fixture s;
  const ProtectionPlan plan = plan_with_budget(s.boundary, s.trace, 0.34);
  ASSERT_EQ(plan.sites.size(), 1u);
  EXPECT_EQ(plan.sites[0], 0u);  // the unknown site dominates
  EXPECT_LT(plan.sdc_after, plan.sdc_before);
  EXPECT_NEAR(plan.cost_fraction, 1.0 / 3.0, 1e-12);
}

TEST(ProtectionBudget, ZeroBudgetProtectsNothing) {
  Fixture s;
  const ProtectionPlan plan = plan_with_budget(s.boundary, s.trace, 0.0);
  EXPECT_TRUE(plan.sites.empty());
  EXPECT_DOUBLE_EQ(plan.sdc_after, plan.sdc_before);
  EXPECT_DOUBLE_EQ(plan.coverage(), 0.0);
}

TEST(ProtectionBudget, FullBudgetRemovesEverything) {
  Fixture s;
  const ProtectionPlan plan = plan_with_budget(s.boundary, s.trace, 1.0);
  EXPECT_DOUBLE_EQ(plan.sdc_after, 0.0);
  EXPECT_DOUBLE_EQ(plan.coverage(), 1.0);
  // Site 2 contributes nothing, so it is never listed.
  EXPECT_EQ(std::count(plan.sites.begin(), plan.sites.end(), 2u), 0);
}

TEST(ProtectionBudget, AccountingMatchesPredictor) {
  Fixture s;
  const ProtectionPlan plan = plan_with_budget(s.boundary, s.trace, 1.0);
  const double denom = 3.0 * fi::kBitsPerValue;
  const double expected_before =
      (s.sdc_bits(0) + s.sdc_bits(1) + s.sdc_bits(2)) / denom;
  EXPECT_NEAR(plan.sdc_before, expected_before, 1e-12);
  EXPECT_NEAR(plan.sdc_before,
              predicted_overall_sdc(s.boundary, s.trace), 1e-12);
}

TEST(ProtectionTarget, StopsAsSoonAsTargetIsMet) {
  Fixture s;
  // Target: everything below what removing site 0 alone achieves.
  const double denom = 3.0 * fi::kBitsPerValue;
  const double after_site0 = (s.sdc_bits(1) + s.sdc_bits(2)) / denom;
  const ProtectionPlan plan =
      plan_to_target(s.boundary, s.trace, after_site0 + 1e-9);
  ASSERT_EQ(plan.sites.size(), 1u);
  EXPECT_EQ(plan.sites[0], 0u);
  EXPECT_LE(plan.sdc_after, after_site0 + 1e-9);
}

TEST(ProtectionTarget, UnreachableTargetProtectsAllContributors) {
  Fixture s;
  const ProtectionPlan plan = plan_to_target(s.boundary, s.trace, 0.0);
  EXPECT_DOUBLE_EQ(plan.sdc_after, 0.0);
  EXPECT_EQ(plan.sites.size(), 2u);  // sites 0 and 1; site 2 contributes 0
}

TEST(ProtectionTarget, AlreadyMetTargetNeedsNoProtection) {
  Fixture s;
  const ProtectionPlan plan = plan_to_target(s.boundary, s.trace, 1.0);
  EXPECT_TRUE(plan.sites.empty());
}

class ProtectionCoverageSweep : public ::testing::TestWithParam<double> {};

TEST_P(ProtectionCoverageSweep, CoverageMonotoneInBudget) {
  // Property: more budget never reduces coverage.
  std::vector<double> trace(64, 1.0);
  std::vector<double> thresholds(64);
  for (std::size_t i = 0; i < 64; ++i) {
    thresholds[i] = i % 7 == 0 ? 0.0 : 1e-3 * static_cast<double>(i);
  }
  const FaultToleranceBoundary boundary(std::move(thresholds));

  const double budget = GetParam();
  const ProtectionPlan smaller = plan_with_budget(boundary, trace, budget);
  const ProtectionPlan larger =
      plan_with_budget(boundary, trace, std::min(1.0, budget + 0.2));
  EXPECT_GE(larger.coverage() + 1e-12, smaller.coverage());
  EXPECT_GE(larger.sites.size(), smaller.sites.size());
}

INSTANTIATE_TEST_SUITE_P(Budgets, ProtectionCoverageSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.8));

}  // namespace
}  // namespace ftb::boundary
