// crash_site detection-latency semantics: the site recorded for a Crash is
// where the run first *produced* a non-finite value, which is the injection
// site when the corrupted value itself is non-finite, and strictly later
// when a finite-but-huge corruption only overflows after propagating.
#include "fi/executor.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "fi/program.h"
#include "fi/tracer.h"
#include "kernels/hazard.h"

namespace ftb::fi {
namespace {

/// d steps of x <- x * x starting from 1.0.  Golden trace is all ones, so
/// any injected magnitude e produces e^(2^k) after k further steps: a huge
/// finite corruption overflows to +inf a predictable number of steps later.
class SquaringChain final : public Program {
 public:
  explicit SquaringChain(std::uint64_t depth) : depth_(depth) {}

  std::string name() const override { return "squaring_chain"; }
  std::string config_key() const override {
    return "squaring_chain:d=" + std::to_string(depth_);
  }
  OutputComparator comparator() const override { return {1e-9, 1e-6}; }

  std::vector<double> run(Tracer& t) const override {
    double x = t.step(1.0);
    for (std::uint64_t i = 1; i < depth_; ++i) {
      x = t.step(x * x);
    }
    return {x};
  }

 private:
  std::uint64_t depth_;
};

TEST(CrashLatency, NonFiniteInjectionTrapsAtTheSite) {
  const SquaringChain program(10);
  const GoldenRun golden = run_golden(program);
  for (const std::uint64_t site : {std::uint64_t{2}, std::uint64_t{7}}) {
    const ExperimentResult nan_result = run_injected(
        program, golden,
        Injection::set_value(site, std::numeric_limits<double>::quiet_NaN()));
    EXPECT_EQ(nan_result.outcome, Outcome::kCrash);
    EXPECT_EQ(nan_result.crash_reason, CrashReason::kNonFinite);
    EXPECT_EQ(nan_result.crash_site, site);  // zero detection latency
    EXPECT_TRUE(std::isinf(nan_result.injected_error));

    const ExperimentResult inf_result = run_injected(
        program, golden,
        Injection::set_value(site, std::numeric_limits<double>::infinity()));
    EXPECT_EQ(inf_result.crash_site, site);
  }
}

TEST(CrashLatency, ExponentFlipToInfinityTrapsAtTheSite) {
  // A real single-bit fault with the same zero-latency behaviour: flipping
  // bit 62 of 1.0 (0x3FF exponent) lands on 0x7FF -- +infinity.
  const SquaringChain program(10);
  const GoldenRun golden = run_golden(program);
  const ExperimentResult result =
      run_injected(program, golden, Injection::bit_flip(4, 62));
  EXPECT_EQ(result.outcome, Outcome::kCrash);
  EXPECT_EQ(result.crash_reason, CrashReason::kNonFinite);
  EXPECT_EQ(result.crash_site, 4u);
}

TEST(CrashLatency, PropagationInducedOverflowTrapsLater) {
  // Injecting a finite 1e100 at `site`: the value at site+1 is 1e200 (still
  // finite), and the squaring at site+2 overflows -- detection latency of
  // exactly 2 dynamic instructions.
  const SquaringChain program(10);
  const GoldenRun golden = run_golden(program);
  const std::uint64_t site = 3;
  const ExperimentResult result =
      run_injected(program, golden, Injection::set_value(site, 1e100));
  EXPECT_EQ(result.outcome, Outcome::kCrash);
  EXPECT_EQ(result.crash_reason, CrashReason::kNonFinite);
  EXPECT_EQ(result.crash_site, site + 2);
  EXPECT_DOUBLE_EQ(result.injected_error, 1e100 - 1.0);

  // A smaller magnitude needs more squarings before it overflows: 1e20 ->
  // 1e40 -> 1e80 -> 1e160 -> overflow at the fourth step.
  const ExperimentResult slow =
      run_injected(program, golden, Injection::set_value(site, 1e20));
  EXPECT_EQ(slow.outcome, Outcome::kCrash);
  EXPECT_EQ(slow.crash_site, site + 4);
  EXPECT_GT(slow.crash_site, result.crash_site);
}

TEST(CrashLatency, ControlFlowDivergenceClassified) {
  // In-process, a *small* trip-count shift on the hazard kernel is safe to
  // run (no segfault, no hang) but executes a different number of dynamic
  // instructions -- classified as Crash with the control-flow reason.
  const kernels::HazardProgram program{kernels::HazardConfig{}};
  const GoldenRun golden = run_golden(program);
  // Golden trip count is 16.0; exponent LSB flip makes it 32.0 -> 16 extra
  // traced steps, still finite and fast.
  ASSERT_DOUBLE_EQ(golden.trace[program.trip_site(0)], 16.0);
  const ExperimentResult result = run_injected(
      program, golden, Injection::bit_flip(program.trip_site(0), 52));
  EXPECT_EQ(result.outcome, Outcome::kCrash);
  EXPECT_EQ(result.crash_reason, CrashReason::kControlFlow);
}

}  // namespace
}  // namespace ftb::fi
