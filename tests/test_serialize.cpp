#include "boundary/serialize.h"

#include <cstdio>
#include <filesystem>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/cache.h"

namespace ftb::boundary {
namespace {

FaultToleranceBoundary sample_boundary() {
  return FaultToleranceBoundary({0.0, 1.5e-7, 42.0,
                                 std::numeric_limits<double>::infinity()},
                                {0, 1, 0, 1});
}

TEST(Serialize, RoundTrip) {
  const FaultToleranceBoundary original = sample_boundary();
  const std::string payload = serialize(original, "cg:test-config");
  const auto restored = deserialize(payload, "cg:test-config");
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->sites(), original.sites());
  for (std::size_t i = 0; i < original.sites(); ++i) {
    EXPECT_EQ(restored->threshold(i), original.threshold(i)) << i;
    EXPECT_EQ(restored->is_exact(i), original.is_exact(i)) << i;
  }
}

TEST(Serialize, ConfigMismatchRejected) {
  const std::string payload = serialize(sample_boundary(), "cg:A");
  EXPECT_FALSE(deserialize(payload, "cg:B").has_value());
  // No expectation: accepted regardless of the embedded key.
  EXPECT_TRUE(deserialize(payload).has_value());
}

TEST(Serialize, CorruptPayloadRejected) {
  std::string payload = serialize(sample_boundary(), "cfg");
  EXPECT_FALSE(deserialize(payload.substr(0, payload.size() / 2)).has_value());
  payload[0] ^= 0x5a;  // break the magic
  EXPECT_FALSE(deserialize(payload).has_value());
  EXPECT_FALSE(deserialize("").has_value());
}

TEST(Serialize, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("ftb_boundary_" + std::to_string(::getpid()) + ".bin");
  const FaultToleranceBoundary original = sample_boundary();
  ASSERT_TRUE(save_to_file(original, "cfg", path.string()));
  const auto restored = load_from_file(path.string(), "cfg");
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->sites(), original.sites());
  EXPECT_DOUBLE_EQ(restored->threshold(2), 42.0);
  std::filesystem::remove(path);
}

TEST(Serialize, MissingFileIsNullopt) {
  EXPECT_FALSE(load_from_file("/nonexistent/ftb.bin").has_value());
}

TEST(Serialize, EmptyBoundary) {
  const FaultToleranceBoundary empty;
  const auto restored = deserialize(serialize(empty, "k"), "k");
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->sites(), 0u);
}

TEST(Serialize, ArtifactCarriesMetadata) {
  const std::string payload = serialize(sample_boundary(), "cg:meta");
  std::string error;
  const auto artifact = deserialize_artifact(payload, {}, &error);
  ASSERT_TRUE(artifact.has_value()) << error;
  EXPECT_EQ(artifact->config_key, "cg:meta");
  EXPECT_EQ(artifact->version, 2u);
  EXPECT_EQ(artifact->boundary.sites(), sample_boundary().sites());
}

TEST(Serialize, EveryByteCorruptionRejected) {
  const std::string payload = serialize(sample_boundary(), "cfg-corrupt");
  for (std::size_t i = 0; i < payload.size(); ++i) {
    std::string rotted = payload;
    rotted[i] = static_cast<char>(rotted[i] ^ 0x5a);
    std::string error;
    const auto artifact = deserialize_artifact(rotted, {}, &error);
    EXPECT_FALSE(artifact.has_value()) << "byte " << i << " xor 0x5a accepted";
    EXPECT_FALSE(error.empty()) << "byte " << i << ": no diagnostic";
  }
}

TEST(Serialize, EveryTruncationRejected) {
  const std::string payload = serialize(sample_boundary(), "cfg-trunc");
  for (std::size_t len = 0; len < payload.size(); ++len) {
    std::string error;
    const auto artifact =
        deserialize_artifact(payload.substr(0, len), {}, &error);
    EXPECT_FALSE(artifact.has_value()) << "prefix of " << len << " accepted";
    EXPECT_FALSE(error.empty()) << "prefix of " << len << ": no diagnostic";
  }
}

TEST(Serialize, TrailingGarbageRejected) {
  std::string payload = serialize(sample_boundary(), "cfg-tail");
  payload += std::string(8, '\0');
  std::string error;
  EXPECT_FALSE(deserialize_artifact(payload, {}, &error).has_value());
  EXPECT_FALSE(error.empty());
}

// An unframed v1 file (written before the CRC frame existed) must still
// load; new saves always re-emit v2.
TEST(Serialize, LegacyV1PayloadLoads) {
  const FaultToleranceBoundary original = sample_boundary();
  util::BinaryWriter writer;
  writer.put_u64(0x4654422d424e4452ull);  // "FTB-BNDR"
  writer.put_u64(1);                      // legacy version, no CRC
  writer.put_string("legacy-cfg");
  writer.put_u64(original.sites());
  for (std::size_t i = 0; i < original.sites(); ++i) {
    writer.put_f64(original.threshold(i));
  }
  std::vector<std::uint8_t> exact(original.sites());
  for (std::size_t i = 0; i < original.sites(); ++i) {
    exact[i] = original.is_exact(i) ? 1 : 0;
  }
  writer.put_bytes(exact);
  const std::string payload{writer.buffer().begin(), writer.buffer().end()};

  std::string error;
  const auto artifact = deserialize_artifact(payload, "legacy-cfg", &error);
  ASSERT_TRUE(artifact.has_value()) << error;
  EXPECT_EQ(artifact->version, 1u);
  ASSERT_EQ(artifact->boundary.sites(), original.sites());
  for (std::size_t i = 0; i < original.sites(); ++i) {
    EXPECT_EQ(artifact->boundary.threshold(i), original.threshold(i)) << i;
  }
  // A legacy payload with junk after the body is not a valid v1 file (and
  // is exactly what a version-rotted v2 file looks like).
  std::string error2;
  EXPECT_FALSE(
      deserialize_artifact(payload + "x", "legacy-cfg", &error2).has_value());
  EXPECT_FALSE(error2.empty());
}

TEST(Serialize, UnsupportedVersionDiagnosed) {
  util::BinaryWriter writer;
  writer.put_u64(0x4654422d424e4452ull);
  writer.put_u64(99);
  const std::string payload{writer.buffer().begin(), writer.buffer().end()};
  std::string error;
  EXPECT_FALSE(deserialize_artifact(payload, {}, &error).has_value());
  EXPECT_NE(error.find("unsupported version"), std::string::npos) << error;
}

}  // namespace
}  // namespace ftb::boundary
