#include "boundary/serialize.h"

#include <cstdio>
#include <filesystem>
#include <limits>

#include <gtest/gtest.h>

namespace ftb::boundary {
namespace {

FaultToleranceBoundary sample_boundary() {
  return FaultToleranceBoundary({0.0, 1.5e-7, 42.0,
                                 std::numeric_limits<double>::infinity()},
                                {0, 1, 0, 1});
}

TEST(Serialize, RoundTrip) {
  const FaultToleranceBoundary original = sample_boundary();
  const std::string payload = serialize(original, "cg:test-config");
  const auto restored = deserialize(payload, "cg:test-config");
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->sites(), original.sites());
  for (std::size_t i = 0; i < original.sites(); ++i) {
    EXPECT_EQ(restored->threshold(i), original.threshold(i)) << i;
    EXPECT_EQ(restored->is_exact(i), original.is_exact(i)) << i;
  }
}

TEST(Serialize, ConfigMismatchRejected) {
  const std::string payload = serialize(sample_boundary(), "cg:A");
  EXPECT_FALSE(deserialize(payload, "cg:B").has_value());
  // No expectation: accepted regardless of the embedded key.
  EXPECT_TRUE(deserialize(payload).has_value());
}

TEST(Serialize, CorruptPayloadRejected) {
  std::string payload = serialize(sample_boundary(), "cfg");
  EXPECT_FALSE(deserialize(payload.substr(0, payload.size() / 2)).has_value());
  payload[0] ^= 0x5a;  // break the magic
  EXPECT_FALSE(deserialize(payload).has_value());
  EXPECT_FALSE(deserialize("").has_value());
}

TEST(Serialize, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("ftb_boundary_" + std::to_string(::getpid()) + ".bin");
  const FaultToleranceBoundary original = sample_boundary();
  ASSERT_TRUE(save_to_file(original, "cfg", path.string()));
  const auto restored = load_from_file(path.string(), "cfg");
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->sites(), original.sites());
  EXPECT_DOUBLE_EQ(restored->threshold(2), 42.0);
  std::filesystem::remove(path);
}

TEST(Serialize, MissingFileIsNullopt) {
  EXPECT_FALSE(load_from_file("/nonexistent/ftb.bin").has_value());
}

TEST(Serialize, EmptyBoundary) {
  const FaultToleranceBoundary empty;
  const auto restored = deserialize(serialize(empty, "k"), "k");
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->sites(), 0u);
}

}  // namespace
}  // namespace ftb::boundary
