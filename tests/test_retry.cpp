// Tests for util/retry.h: attempt counting, jittered exponential backoff,
// and the deadline cap.  All sleeping goes through the injectable sleeper,
// so these tests take no wall-clock time.
#include "util/retry.h"

#include <gtest/gtest.h>

#include <vector>

namespace ftb::util {
namespace {

TEST(Retry, FirstAttemptSuccessSleepsNever) {
  RetryStats stats;
  std::vector<std::uint32_t> sleeps;
  const bool ok = retry_with_backoff(
      {}, [] { return true; }, &stats,
      [&](std::uint32_t ms) { sleeps.push_back(ms); });
  EXPECT_TRUE(ok);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.total_sleep_ms, 0u);
  EXPECT_TRUE(sleeps.empty());
  EXPECT_FALSE(stats.deadline_hit);
}

TEST(Retry, ZeroRetriesMeansExactlyOneAttempt) {
  RetryOptions options;
  options.max_retries = 0;
  RetryStats stats;
  int calls = 0;
  const bool ok = retry_with_backoff(
      options,
      [&] {
        ++calls;
        return false;
      },
      &stats, [](std::uint32_t) {});
  EXPECT_FALSE(ok);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.attempts, 1);
}

TEST(Retry, SucceedsAfterTransientFailures) {
  RetryOptions options;
  options.max_retries = 5;
  RetryStats stats;
  int calls = 0;
  const bool ok = retry_with_backoff(
      options,
      [&] {
        ++calls;
        return calls >= 3;
      },
      &stats, [](std::uint32_t) {});
  EXPECT_TRUE(ok);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
}

TEST(Retry, BackoffGrowsExponentiallyWithinJitterBand) {
  RetryOptions options;
  options.max_retries = 4;
  options.initial_backoff_ms = 100;
  options.multiplier = 2.0;
  options.jitter = 0.25;
  options.max_total_sleep_ms = 0;  // no cap for this test
  std::vector<std::uint32_t> sleeps;
  retry_with_backoff(
      options, [] { return false; }, nullptr,
      [&](std::uint32_t ms) { sleeps.push_back(ms); });
  ASSERT_EQ(sleeps.size(), 4u);
  double nominal = 100.0;
  for (const std::uint32_t ms : sleeps) {
    EXPECT_GE(ms, static_cast<std::uint32_t>(0.75 * nominal) - 1);
    EXPECT_LE(ms, static_cast<std::uint32_t>(1.25 * nominal) + 1);
    nominal *= 2.0;
  }
}

TEST(Retry, JitterIsDeterministicPerSeed) {
  RetryOptions options;
  options.max_retries = 3;
  options.max_total_sleep_ms = 0;
  const auto run = [&](std::uint64_t seed) {
    options.jitter_seed = seed;
    std::vector<std::uint32_t> sleeps;
    retry_with_backoff(
        options, [] { return false; }, nullptr,
        [&](std::uint32_t ms) { sleeps.push_back(ms); });
    return sleeps;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Retry, DeadlineCapClampsAndStops) {
  RetryOptions options;
  options.max_retries = 1000;
  options.initial_backoff_ms = 64;
  options.jitter = 0.0;
  options.max_total_sleep_ms = 100;
  RetryStats stats;
  std::vector<std::uint32_t> sleeps;
  const bool ok = retry_with_backoff(
      options, [] { return false; }, &stats,
      [&](std::uint32_t ms) { sleeps.push_back(ms); });
  EXPECT_FALSE(ok);
  EXPECT_TRUE(stats.deadline_hit);
  // Summed sleeps never exceed the budget; the last one is clamped to it.
  EXPECT_LE(stats.total_sleep_ms, 100u);
  std::uint32_t total = 0;
  for (const std::uint32_t ms : sleeps) total += ms;
  EXPECT_EQ(total, stats.total_sleep_ms);
  // Far fewer than max_retries attempts: the budget stopped the loop.
  EXPECT_LT(stats.attempts, 10);
}

TEST(Retry, StatsResetBetweenCalls) {
  RetryOptions options;
  options.max_retries = 2;
  RetryStats stats;
  retry_with_backoff(
      options, [] { return false; }, &stats, [](std::uint32_t) {});
  const int first_attempts = stats.attempts;
  retry_with_backoff(
      options, [] { return true; }, &stats, [](std::uint32_t) {});
  EXPECT_EQ(first_attempts, 3);
  EXPECT_EQ(stats.attempts, 1);
}

}  // namespace
}  // namespace ftb::util
