// Tests for the resilient campaign supervisor (campaign/supervisor.h) and
// the persistent worker pool underneath it (fi/sandbox.h WorkerPool):
// baseline equivalence, quarantine-after-exactly-K, external worker kills
// and stops (innocent experiments retried, nothing lost or duplicated),
// graceful degradation to in-process execution, and byte-identical
// checkpoint resume after the supervisor itself is SIGKILLed.  As in
// test_sandbox.cpp, signal identity is asserted via is_isolation_reason()
// so sanitizer builds (where a segfault becomes a nonzero exit) still pass.
#include "campaign/supervisor.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/checkpoint.h"
#include "campaign/sample_space.h"
#include "campaign/sampler.h"
#include "fi/executor.h"
#include "kernels/hazard.h"
#include "kernels/registry.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ftb::campaign {
namespace {

void expect_records_match(std::span<const ExperimentRecord> actual,
                          std::span<const ExperimentRecord> expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id) << i;
    EXPECT_EQ(actual[i].result.outcome, expected[i].result.outcome) << i;
    EXPECT_EQ(actual[i].result.crash_reason, expected[i].result.crash_reason)
        << i;
    EXPECT_DOUBLE_EQ(actual[i].result.injected_error,
                     expected[i].result.injected_error)
        << i;
    EXPECT_DOUBLE_EQ(actual[i].result.output_error,
                     expected[i].result.output_error)
        << i;
  }
}

TEST(Supervisor, MatchesBaselineOnWellBehavedKernel) {
  const fi::ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  util::Rng rng(33);
  const std::vector<ExperimentId> ids =
      sample_uniform(rng, golden.sample_space_size(), 80);

  util::ThreadPool pool(2);
  const std::vector<ExperimentRecord> baseline =
      run_experiments(*program, golden, ids, pool);

  SupervisorOptions options;
  options.pool.workers = 4;
  options.chunk_size = 8;
  CampaignSupervisor supervisor(*program, golden, options);
  EXPECT_EQ(supervisor.pool().worker_count(), 4);
  const std::vector<ExperimentRecord> supervised = supervisor.run(ids);

  expect_records_match(supervised, baseline);
  const SupervisorStats stats = supervisor.stats();
  EXPECT_EQ(stats.worker_deaths, 0u);
  EXPECT_EQ(stats.worker_hangs, 0u);
  EXPECT_EQ(stats.quarantined, 0u);
  EXPECT_EQ(stats.fallback_experiments, 0u);
  EXPECT_EQ(stats.pool.workers_spawned, 4u);
  EXPECT_GE(stats.chunks_dispatched, ids.size() / options.chunk_size);
}

TEST(Supervisor, RunIsRepeatableAcrossCalls) {
  // The pool and ledger persist across run() calls; a second batch over the
  // same supervisor must behave like the first.
  const fi::ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  util::Rng rng(34);
  const std::vector<ExperimentId> ids =
      sample_uniform(rng, golden.sample_space_size(), 24);

  SupervisorOptions options;
  options.pool.workers = 2;
  CampaignSupervisor supervisor(*program, golden, options);
  const std::vector<ExperimentRecord> first = supervisor.run(ids);
  const std::vector<ExperimentRecord> second = supervisor.run(ids);
  expect_records_match(second, first);
  // Workers were forked once, not once per run().
  EXPECT_EQ(supervisor.stats().pool.workers_spawned, 2u);
}

TEST(Supervisor, QuarantinesLethalSiteAfterExactlyKAttempts) {
  const kernels::HazardProgram program{kernels::HazardConfig{}};
  const fi::GoldenRun golden = fi::run_golden(program);
  ASSERT_DOUBLE_EQ(golden.trace[program.offset_site(1)], 5.0);

  const std::vector<ExperimentId> ids = {
      encode(0, 1),                        // benign
      encode(program.offset_site(1), 61),  // SIGSEGV every attempt
      encode(1, 2),                        // benign
  };
  SupervisorOptions options;
  options.pool.workers = 2;
  options.chunk_size = 4;
  options.quarantine_after = 3;
  CampaignSupervisor supervisor(program, golden, options);
  const std::vector<ExperimentRecord> records = supervisor.run(ids);

  ASSERT_EQ(records.size(), 3u);
  // The lethal flip burned exactly K workers, then was quarantined.
  EXPECT_EQ(supervisor.kill_count(ids[1]), 3);
  EXPECT_EQ(records[1].result.outcome, fi::Outcome::kCrash);
  EXPECT_EQ(records[1].result.crash_reason, fi::CrashReason::kQuarantined);
  const SupervisorStats stats = supervisor.stats();
  EXPECT_EQ(stats.worker_deaths, 3u);
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.pool.respawns, 3u);
  // The benign neighbours are unaffected: identical to in-process runs.
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    const fi::ExperimentResult direct =
        fi::run_injected(program, golden, injection_of(ids[i]));
    EXPECT_EQ(records[i].result.outcome, direct.outcome) << i;
    EXPECT_DOUBLE_EQ(records[i].result.output_error, direct.output_error)
        << i;
  }
  // A later run() call skips the quarantined experiment at dispatch time
  // without burning any more workers.
  const std::vector<ExperimentRecord> again = supervisor.run(ids);
  EXPECT_EQ(again[1].result.crash_reason, fi::CrashReason::kQuarantined);
  EXPECT_EQ(supervisor.stats().worker_deaths, 3u);
  EXPECT_EQ(supervisor.kill_count(ids[1]), 3);
}

TEST(Supervisor, NonQuarantinedOutcomesMatchPerBatchSandbox) {
  // The acceptance criterion: outcomes identical to the per-batch sandbox
  // baseline for every non-quarantined experiment.
  const kernels::HazardProgram program{kernels::HazardConfig{}};
  const fi::GoldenRun golden = fi::run_golden(program);
  const std::vector<ExperimentId> ids = {
      encode(0, 1),
      encode(program.offset_site(1), 61),   // SIGSEGV
      encode(1, 2),
      encode(program.divisor_site(0), 62),  // SIGFPE
      encode(2, 3),
  };
  const std::vector<ExperimentRecord> sandboxed =
      run_experiments_sandboxed(program, golden, ids);

  SupervisorOptions options;
  options.pool.workers = 2;
  options.quarantine_after = 1;  // quarantine on first kill: fastest
  CampaignSupervisor supervisor(program, golden, options);
  const std::vector<ExperimentRecord> supervised = supervisor.run(ids);

  ASSERT_EQ(supervised.size(), sandboxed.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (supervised[i].result.crash_reason == fi::CrashReason::kQuarantined) {
      // Quarantined experiments are exactly the sandbox's isolation
      // crashes here, still classified Crash.
      EXPECT_EQ(supervised[i].result.outcome, fi::Outcome::kCrash) << i;
      EXPECT_TRUE(fi::is_isolation_reason(sandboxed[i].result.crash_reason))
          << i;
      continue;
    }
    EXPECT_EQ(supervised[i].result.outcome, sandboxed[i].result.outcome) << i;
    EXPECT_DOUBLE_EQ(supervised[i].result.output_error,
                     sandboxed[i].result.output_error)
        << i;
  }
}

TEST(Supervisor, HeartbeatStallQuarantinesHangingExperiment) {
  const kernels::HazardSpinProgram program{kernels::HazardSpinConfig{}};
  const fi::GoldenRun golden = fi::run_golden(program);
  ASSERT_DOUBLE_EQ(golden.trace[kernels::HazardSpinProgram::kDecaySite], 0.5);

  const std::vector<ExperimentId> ids = {
      encode(kernels::HazardSpinProgram::kDecaySite, 52),  // spins forever
      encode(0, 0),                                        // benign
  };
  SupervisorOptions options;
  options.pool.workers = 2;
  options.pool.heartbeat_timeout_ms = 200;
  options.quarantine_after = 2;  // prove the hang is retried once, too
  CampaignSupervisor supervisor(program, golden, options);
  const std::vector<ExperimentRecord> records = supervisor.run(ids);

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].result.outcome, fi::Outcome::kCrash);
  EXPECT_EQ(records[0].result.crash_reason, fi::CrashReason::kQuarantined);
  EXPECT_NE(records[1].result.outcome, fi::Outcome::kHang);
  EXPECT_FALSE(fi::is_isolation_reason(records[1].result.crash_reason));
  const SupervisorStats stats = supervisor.stats();
  EXPECT_EQ(stats.worker_hangs, 2u);  // exactly K heartbeat stalls
  EXPECT_EQ(stats.pool.hang_kills, 2u);
  EXPECT_EQ(stats.quarantined, 1u);
}

TEST(Supervisor, SurvivesExternalWorkerKillsWithoutLosingRecords) {
  // kill -9 workers while the campaign runs: every in-flight experiment is
  // innocent, gets retried, and the final records match the baseline --
  // nothing lost, nothing duplicated.
  const fi::ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  util::Rng rng(35);
  const std::vector<ExperimentId> ids = sample_uniform(
      rng, golden.sample_space_size(),
      std::min<std::uint64_t>(golden.sample_space_size(), 3000));

  util::ThreadPool pool(2);
  const std::vector<ExperimentRecord> baseline =
      run_experiments(*program, golden, ids, pool);

  SupervisorOptions options;
  options.pool.workers = 4;
  options.chunk_size = 4;
  CampaignSupervisor supervisor(*program, golden, options);

  std::atomic<bool> done{false};
  std::thread killer([&] {
    for (int round = 0; round < 10 && !done.load(); ++round) {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      const std::int64_t pid = supervisor.pool().worker_pid(round % 4);
      if (pid > 0) ::kill(static_cast<pid_t>(pid), SIGKILL);
    }
  });
  const std::vector<ExperimentRecord> supervised = supervisor.run(ids);
  done.store(true);
  killer.join();

  expect_records_match(supervised, baseline);
  // No experiment was blamed hard enough to be quarantined.
  EXPECT_EQ(supervisor.stats().quarantined, 0u);
}

TEST(Supervisor, StoppedWorkerIsKilledAsHangAndExperimentRetried) {
  // SIGSTOP freezes a worker without killing it: the heartbeat stalls, the
  // supervisor SIGKILLs it, and the innocent in-flight experiment is
  // requeued -- outcomes still match the baseline exactly.
  const fi::ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  util::Rng rng(36);
  const std::vector<ExperimentId> ids = sample_uniform(
      rng, golden.sample_space_size(),
      std::min<std::uint64_t>(golden.sample_space_size(), 3000));

  util::ThreadPool pool(2);
  const std::vector<ExperimentRecord> baseline =
      run_experiments(*program, golden, ids, pool);

  SupervisorOptions options;
  options.pool.workers = 4;
  options.chunk_size = 4;
  options.pool.heartbeat_timeout_ms = 100;
  CampaignSupervisor supervisor(*program, golden, options);

  std::atomic<bool> done{false};
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    for (int w = 0; w < 2 && !done.load(); ++w) {
      const std::int64_t pid = supervisor.pool().worker_pid(w);
      if (pid > 0) ::kill(static_cast<pid_t>(pid), SIGSTOP);
    }
  });
  const std::vector<ExperimentRecord> supervised = supervisor.run(ids);
  done.store(true);
  stopper.join();

  expect_records_match(supervised, baseline);
  EXPECT_EQ(supervisor.stats().quarantined, 0u);
}

TEST(Supervisor, ShrinksToFewerWorkersUnderSpawnFailures) {
  const fi::ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  util::Rng rng(37);
  const std::vector<ExperimentId> ids =
      sample_uniform(rng, golden.sample_space_size(), 40);

  util::ThreadPool pool(2);
  const std::vector<ExperimentRecord> baseline =
      run_experiments(*program, golden, ids, pool);

  SupervisorOptions options;
  options.pool.workers = 4;
  options.pool.spawn_retry.max_retries = 0;  // one attempt per slot
  options.pool.simulate_spawn_failures = 3;  // first three forks "fail"
  CampaignSupervisor supervisor(*program, golden, options);
  EXPECT_EQ(supervisor.pool().worker_count(), 1);

  const std::vector<ExperimentRecord> supervised = supervisor.run(ids);
  expect_records_match(supervised, baseline);
  const SupervisorStats stats = supervisor.stats();
  EXPECT_EQ(stats.pool.shrinks, 3u);
  EXPECT_EQ(stats.fallback_experiments, 0u);  // one worker carried it all
}

TEST(Supervisor, FallsBackInProcessWhenNoWorkerCanSpawn) {
  const fi::ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  util::Rng rng(38);
  const std::vector<ExperimentId> ids =
      sample_uniform(rng, golden.sample_space_size(), 30);

  util::ThreadPool pool(2);
  const std::vector<ExperimentRecord> baseline =
      run_experiments(*program, golden, ids, pool);

  SupervisorOptions options;
  options.pool.workers = 2;
  options.pool.spawn_retry.max_retries = 0;
  options.pool.simulate_spawn_failures = 1000;  // every fork "fails"
  CampaignSupervisor supervisor(*program, golden, options);
  EXPECT_EQ(supervisor.pool().worker_count(), 0);

  const std::vector<ExperimentRecord> supervised = supervisor.run(ids);
  expect_records_match(supervised, baseline);
  const SupervisorStats stats = supervisor.stats();
  EXPECT_EQ(stats.fallback_experiments, ids.size());
  EXPECT_EQ(stats.pool.shrinks, 2u);
}

TEST(Supervisor, FallbackDisabledThrowsInsteadOfRunningInProcess) {
  const fi::ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  const std::vector<ExperimentId> ids = {encode(0, 1)};

  SupervisorOptions options;
  options.pool.workers = 1;
  options.pool.spawn_retry.max_retries = 0;
  options.pool.simulate_spawn_failures = 1000;
  options.allow_in_process_fallback = false;
  CampaignSupervisor supervisor(*program, golden, options);
  EXPECT_THROW(supervisor.run(ids), std::runtime_error);
}

TEST(Supervisor, FallbackNeverRunsKnownWorkerKillersInProcess) {
  const kernels::HazardProgram program{kernels::HazardConfig{}};
  const fi::GoldenRun golden = fi::run_golden(program);
  const std::vector<ExperimentId> ids = {
      encode(program.offset_site(1), 61),  // SIGSEGV: kills the only worker
      encode(0, 1),                        // benign
  };
  SupervisorOptions options;
  options.pool.workers = 1;
  options.pool.spawn_retry.max_retries = 0;
  // Initial spawn succeeds; the respawn after the first death fails via
  // the respawn-only seam and the pool shrinks to zero.
  options.pool.simulate_respawn_failures = 1;
  options.quarantine_after = 5;  // threshold NOT reached by the single kill
  CampaignSupervisor supervisor(program, golden, options);
  ASSERT_EQ(supervisor.pool().worker_count(), 1);

  const std::vector<ExperimentRecord> records = supervisor.run(ids);
  ASSERT_EQ(records.size(), 2u);
  // The killer was recorded kQuarantined by the fallback (ledger = 1 kill),
  // not run in this process -- otherwise this test binary would be dead.
  EXPECT_EQ(records[0].result.crash_reason, fi::CrashReason::kQuarantined);
  EXPECT_EQ(supervisor.kill_count(ids[0]), 1);
  const fi::ExperimentResult direct =
      fi::run_injected(program, golden, injection_of(ids[1]));
  EXPECT_EQ(records[1].result.outcome, direct.outcome);
  EXPECT_EQ(supervisor.stats().fallback_experiments, 1u);
}

// ---------------------------------------------------------------------------
// Checkpoint integration
// ---------------------------------------------------------------------------

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

struct TempPath {
  std::string path;
  explicit TempPath(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              (name + std::to_string(::getpid()) + ".clog"))
                 .string()) {
    std::filesystem::remove(path);
  }
  ~TempPath() { std::filesystem::remove(path); }
};

TEST(SupervisorCheckpoint, JournalMatchesThreadPoolJournalByteForByte) {
  const fi::ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  util::Rng rng(40);
  const std::vector<ExperimentId> ids =
      sample_uniform(rng, golden.sample_space_size(), 60);

  TempPath supervised_path("ftb_sup_journal_");
  TempPath baseline_path("ftb_base_journal_");

  CheckpointOptions supervised;
  supervised.path = supervised_path.path;
  supervised.flush_every = 16;
  supervised.use_supervisor = true;
  supervised.supervisor.pool.workers = 3;
  const CheckpointRunResult a =
      run_campaign_checkpointed(*program, golden, ids, supervised);

  CheckpointOptions baseline;
  baseline.path = baseline_path.path;
  baseline.flush_every = 16;
  const CheckpointRunResult b =
      run_campaign_checkpointed(*program, golden, ids, baseline);

  EXPECT_EQ(a.log.serialize(), b.log.serialize());
  EXPECT_EQ(read_file_bytes(supervised_path.path),
            read_file_bytes(baseline_path.path));
  EXPECT_EQ(a.supervisor_stats.fallback_experiments, 0u);
}

TEST(SupervisorCheckpoint, ResumeAfterSupervisorSigkillIsByteIdentical) {
  // Kill the *supervisor process* mid-campaign with SIGKILL, resume from
  // the journal, and require the final journal to be byte-identical to an
  // undisturbed run.  Worker orphans are reaped by PR_SET_PDEATHSIG.
  const kernels::HazardProgram program{kernels::HazardConfig{}};
  const fi::GoldenRun golden = fi::run_golden(program);

  std::vector<ExperimentId> ids;
  for (int bit : {1, 2, 3}) {
    for (std::uint64_t site = 0; site < 8; ++site) ids.push_back(encode(site, bit));
  }
  ids.push_back(encode(program.offset_site(1), 61));  // lethal SIGSEGV
  ids.push_back(encode(program.divisor_site(0), 62));  // lethal SIGFPE

  const auto run_checkpointed = [&](const std::string& path) {
    CheckpointOptions options;
    options.path = path;
    options.flush_every = 4;
    options.use_supervisor = true;
    options.supervisor.pool.workers = 2;
    options.supervisor.quarantine_after = 2;
    return run_campaign_checkpointed(program, golden, ids, options);
  };

  TempPath undisturbed_path("ftb_undisturbed_");
  run_checkpointed(undisturbed_path.path);

  TempPath killed_path("ftb_killed_");
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: run the campaign; the parent SIGKILLs us mid-flight.
    try {
      run_checkpointed(killed_path.path);
    } catch (...) {
      ::_exit(3);
    }
    ::_exit(0);
  }
  // Parent: wait for the first flush to land, then SIGKILL the child.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!std::filesystem::exists(killed_path.path) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);

  // Resume (possibly from nothing, if the kill landed before any flush)
  // and compare: the journal must converge to the undisturbed bytes.
  run_checkpointed(killed_path.path);
  EXPECT_EQ(read_file_bytes(killed_path.path),
            read_file_bytes(undisturbed_path.path));
}

}  // namespace
}  // namespace ftb::campaign
