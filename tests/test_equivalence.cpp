#include "campaign/equivalence.h"

#include <set>

#include <gtest/gtest.h>

#include "boundary/metrics.h"
#include "campaign/ground_truth.h"
#include "kernels/registry.h"

namespace ftb::campaign {
namespace {

struct Prepared {
  explicit Prepared(const char* name)
      : program(kernels::make_program(name, kernels::Preset::kTiny)),
        golden(fi::run_golden(*program)),
        pool(1) {}
  fi::ProgramPtr program;
  fi::GoldenRun golden;
  util::ThreadPool pool;
};

TEST(EquivalenceClasses, PartitionCoversEverySiteExactlyOnce) {
  Prepared p("cg");
  const EquivalenceClasses classes(p.golden);
  std::set<std::uint64_t> seen;
  for (std::size_t cls = 0; cls < classes.class_count(); ++cls) {
    for (const std::uint64_t site : classes.members(cls)) {
      EXPECT_TRUE(seen.insert(site).second) << "site " << site << " repeated";
      EXPECT_EQ(classes.class_of(site), cls);
    }
  }
  EXPECT_EQ(seen.size(), p.golden.trace.size());
  EXPECT_GT(classes.class_count(), 1u);
  EXPECT_LT(classes.class_count(), p.golden.trace.size());
}

TEST(EquivalenceClasses, MembersShareSignAndRoughMagnitude) {
  Prepared p("fft");
  const EquivalenceClasses classes(p.golden, /*magnitude_bits_per_bucket=*/3);
  for (std::size_t cls = 0; cls < classes.class_count(); ++cls) {
    const auto members = classes.members(cls);
    const double first = p.golden.trace[members[0]];
    for (const std::uint64_t site : members) {
      const double value = p.golden.trace[site];
      EXPECT_EQ(std::signbit(value), std::signbit(first));
      if (value != 0.0 && first != 0.0) {
        // Same 8x-wide magnitude bucket.
        EXPECT_EQ(std::ilogb(std::fabs(value)) / 3,
                  std::ilogb(std::fabs(first)) / 3);
      } else {
        EXPECT_EQ(value == 0.0, first == 0.0);
      }
    }
  }
}

TEST(EquivalenceClasses, CoarserBucketsGiveFewerClasses) {
  Prepared p("lu");
  const EquivalenceClasses fine(p.golden, 1);
  const EquivalenceClasses coarse(p.golden, 8);
  EXPECT_LE(coarse.class_count(), fine.class_count());
  EXPECT_GE(coarse.mean_class_size(), fine.mean_class_size());
}

TEST(EquivalenceInference, RespectsBudgetAndIsDeterministic) {
  Prepared p("stencil2d");
  EquivalenceInferenceOptions options;
  options.budget = 200;
  options.seed = 3;
  const EquivalenceInferenceResult a =
      infer_with_equivalence(*p.program, p.golden, options, p.pool);
  const EquivalenceInferenceResult b =
      infer_with_equivalence(*p.program, p.golden, options, p.pool);
  EXPECT_LE(a.sampled_ids.size(), 200u);
  EXPECT_EQ(a.sampled_ids, b.sampled_ids);
  EXPECT_EQ(a.counts.total(), a.sampled_ids.size());
}

TEST(EquivalenceInference, BroadcastReachesUntestedSites) {
  Prepared p("cg");
  EquivalenceInferenceOptions options;
  options.budget = p.golden.sample_space_size() / 100;
  const EquivalenceInferenceResult result =
      infer_with_equivalence(*p.program, p.golden, options, p.pool);
  // Far more sites end up informed than were directly sampled.
  std::set<std::uint64_t> sampled_sites;
  for (const ExperimentId id : result.sampled_ids) {
    sampled_sites.insert(site_of(id));
  }
  EXPECT_GT(result.boundary.informed_sites(), sampled_sites.size());
}

TEST(EquivalenceInference, RecallBeatsUniformAtTinyBudgets) {
  // The whole point of the combination: at very small budgets the pilot +
  // broadcast scheme identifies more masked cases than uniform sampling.
  Prepared p("fft");
  const GroundTruth truth =
      GroundTruth::compute(*p.program, p.golden, p.pool, /*use_cache=*/false);
  const std::uint64_t budget = p.golden.sample_space_size() / 500;  // 0.2%

  EquivalenceInferenceOptions equivalence_options;
  equivalence_options.budget = budget;
  equivalence_options.seed = 9;
  const EquivalenceInferenceResult equivalence =
      infer_with_equivalence(*p.program, p.golden, equivalence_options,
                             p.pool);
  const auto equivalence_metrics = boundary::evaluate_boundary(
      equivalence.boundary, p.golden.trace, truth.outcomes(),
      equivalence.sampled_ids);

  InferenceOptions uniform_options;
  uniform_options.sample_fraction =
      static_cast<double>(budget) /
      static_cast<double>(p.golden.sample_space_size());
  uniform_options.seed = 9;
  uniform_options.filter = true;
  const InferenceResult uniform =
      infer_uniform(*p.program, p.golden, uniform_options, p.pool);
  const auto uniform_metrics = boundary::evaluate_boundary(
      uniform.boundary, p.golden.trace, truth.outcomes(),
      uniform.sampled_ids);

  EXPECT_GT(equivalence_metrics.recall(), uniform_metrics.recall());
}

}  // namespace
}  // namespace ftb::campaign
