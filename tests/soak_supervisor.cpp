// Soak / stress tests for the resilient campaign supervisor (selected with
// `ctest -L soak`, but bounded to a few seconds so the default run can
// afford them too).  The acceptance bar from the supervisor design: a
// campaign over the hazard kernels with >= 4 workers must survive at least
// ten induced worker deaths and at least two induced hangs with zero lost
// or duplicated records, and outcomes identical to the per-batch sandbox
// baseline for every non-quarantined experiment.
#include "campaign/supervisor.h"

#include <errno.h>
#include <signal.h>
#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/sample_space.h"
#include "fi/executor.h"
#include "kernels/hazard.h"

namespace ftb::campaign {
namespace {

// The reaping contract (fi/sandbox.cpp): every watchdog kill and external
// kill is followed by a blocking waitpid, so once a supervisor is destroyed
// this process must have no children left at all -- not running, and
// especially not zombies.  waitpid(-1, WNOHANG) distinguishes the cases:
// pid > 0 is an unreaped zombie, 0 is a live straggler, ECHILD is clean.
void expect_no_zombie_children() {
  int status = 0;
  pid_t pid = 0;
  while ((pid = ::waitpid(-1, &status, WNOHANG)) > 0) {
    ADD_FAILURE() << "leaked zombie child pid " << pid;
  }
  EXPECT_TRUE(pid == -1 && errno == ECHILD)
      << "children outlived the supervisor (waitpid returned " << pid << ")";
}

TEST(SoakSupervisor, SurvivesInducedDeathsAndHangsOnHazardKernel) {
  const kernels::HazardProgram program{kernels::HazardConfig{}};
  const fi::GoldenRun golden = fi::run_golden(program);
  ASSERT_DOUBLE_EQ(golden.trace[program.offset_site(1)], 5.0);
  ASSERT_DOUBLE_EQ(golden.trace[program.divisor_site(0)], 8.0);
  ASSERT_DOUBLE_EQ(golden.trace[program.trip_site(0)], 16.0);

  // ~40 benign experiments interleaved with two deterministic killers and
  // one deterministic hang.
  std::vector<ExperimentId> ids;
  for (int bit : {1, 2, 3, 4, 5}) {
    for (std::uint64_t site = 0; site < 8; ++site) {
      ids.push_back(encode(site, bit));
    }
  }
  const ExperimentId segv_id = encode(program.offset_site(1), 61);
  const ExperimentId fpe_id = encode(program.divisor_site(0), 62);
  const ExperimentId hang_id = encode(program.trip_site(0), 61);
  ids.insert(ids.begin() + 7, segv_id);
  ids.insert(ids.begin() + 19, fpe_id);
  ids.insert(ids.begin() + 31, hang_id);

  // Generous timeouts: under sanitizers every experiment runs several
  // times slower, and a benign experiment misclassified as a hang would
  // (correctly) show up as a baseline mismatch below.
  fi::SandboxOptions sandbox_options;
  sandbox_options.timeout_ms = 1000;
  const std::vector<ExperimentRecord> baseline =
      run_experiments_sandboxed(program, golden, ids, sandbox_options);

  SupervisorOptions options;
  options.pool.workers = 4;
  options.chunk_size = 4;
  options.pool.heartbeat_timeout_ms = 400;
  // Each killer burns six workers before quarantine: 12 deterministic
  // deaths from the two lethal flips, plus whatever the external killer
  // below adds.  The hang site stalls the heartbeat twice (w/ retry).
  options.quarantine_after = 6;
  {  // scope: the supervisor must be destroyed before the zombie check
    CampaignSupervisor supervisor(program, golden, options);

    // External chaos on top: kill -9 a rotating worker a few times while the
    // campaign runs.  Every experiment in flight at those moments is
    // innocent and must be retried to its baseline outcome.
    std::atomic<bool> done{false};
    std::thread killer([&] {
      for (int round = 0; round < 6 && !done.load(); ++round) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        const std::int64_t pid = supervisor.pool().worker_pid(round % 4);
        if (pid > 0) ::kill(static_cast<pid_t>(pid), SIGKILL);
      }
    });
    const std::vector<ExperimentRecord> records = supervisor.run(ids);
    done.store(true);
    killer.join();

    // Zero lost, zero duplicated: exactly one record per id, in order.
    ASSERT_EQ(records.size(), ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(records[i].id, ids[i]) << i;
    }

    const SupervisorStats stats = supervisor.stats();
    EXPECT_GE(stats.worker_deaths, 10u);  // >= 12 deterministic alone
    EXPECT_GE(stats.worker_hangs, 2u);
    EXPECT_EQ(stats.quarantined, 3u);  // segv, fpe, and the spin hang
    EXPECT_EQ(supervisor.kill_count(segv_id), options.quarantine_after);
    EXPECT_EQ(supervisor.kill_count(fpe_id), options.quarantine_after);
    EXPECT_EQ(supervisor.kill_count(hang_id), options.quarantine_after);

    // Non-quarantined outcomes identical to the per-batch sandbox baseline.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (records[i].result.crash_reason == fi::CrashReason::kQuarantined) {
        // The quarantined experiments are exactly the three hazards, which
        // the per-batch sandbox isolates (crash) or times out (hang).
        EXPECT_TRUE(
            fi::is_isolation_reason(baseline[i].result.crash_reason) ||
            baseline[i].result.outcome == fi::Outcome::kHang)
            << i;
        continue;
      }
      EXPECT_EQ(records[i].result.outcome, baseline[i].result.outcome) << i;
      EXPECT_EQ(records[i].result.crash_reason,
                baseline[i].result.crash_reason)
          << i;
      EXPECT_DOUBLE_EQ(records[i].result.output_error,
                       baseline[i].result.output_error)
          << i;
    }
  }
  expect_no_zombie_children();
}

TEST(SoakSupervisor, RepeatedRunsStayConsistentAcrossWorkerChurn) {
  // Hammer the same supervisor with several campaigns while its workers
  // keep dying: the ledger saturates in run 1 and later runs are stable.
  const kernels::HazardProgram program{kernels::HazardConfig{}};
  const fi::GoldenRun golden = fi::run_golden(program);

  std::vector<ExperimentId> ids;
  for (std::uint64_t site = 0; site < 6; ++site) ids.push_back(encode(site, 2));
  ids.push_back(encode(program.offset_site(1), 61));  // SIGSEGV

  SupervisorOptions options;
  options.pool.workers = 4;
  options.chunk_size = 2;
  options.quarantine_after = 2;
  {  // scope: the supervisor must be destroyed before the zombie check
    CampaignSupervisor supervisor(program, golden, options);

    const std::vector<ExperimentRecord> first = supervisor.run(ids);
    const std::uint64_t deaths_after_first = supervisor.stats().worker_deaths;
    EXPECT_EQ(deaths_after_first, 2u);
    for (int repeat = 0; repeat < 3; ++repeat) {
      const std::vector<ExperimentRecord> again = supervisor.run(ids);
      ASSERT_EQ(again.size(), first.size());
      for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(again[i].id, first[i].id);
        EXPECT_EQ(again[i].result.outcome, first[i].result.outcome) << i;
        EXPECT_EQ(again[i].result.crash_reason, first[i].result.crash_reason)
            << i;
      }
    }
    // The quarantine held: no additional workers died after the first run.
    EXPECT_EQ(supervisor.stats().worker_deaths, deaths_after_first);
  }
  expect_no_zombie_children();
}

TEST(SoakSupervisor, SnapshotModeSurvivesWorkerChurnWithoutZombies) {
  // The snapshot plane multiplies the process tree (worker -> runner ->
  // holders -> experiment children); kill -9ing workers mid-campaign must
  // still leave neither zombies nor stragglers behind, and the records must
  // match a classic supervised run exactly.
  const kernels::HazardProgram program{kernels::HazardConfig{}};
  const fi::GoldenRun golden = fi::run_golden(program);

  std::vector<ExperimentId> ids;
  for (int bit : {1, 2, 3}) {
    for (std::uint64_t site = 0; site < 8; ++site) {
      ids.push_back(encode(site, bit));
    }
  }
  ids.insert(ids.begin() + 5, encode(program.divisor_site(0), 62));  // SIGFPE

  SupervisorOptions classic_options;
  classic_options.pool.workers = 2;
  classic_options.chunk_size = 4;
  classic_options.quarantine_after = 2;
  std::vector<ExperimentRecord> baseline;
  {
    CampaignSupervisor classic(program, golden, classic_options);
    baseline = classic.run(ids);
  }

  SupervisorOptions options = classic_options;
  options.pool.use_snapshots = true;
  options.pool.snapshot.interval = 64;
  {
    CampaignSupervisor supervisor(program, golden, options);
    std::atomic<bool> done{false};
    std::thread killer([&] {
      for (int round = 0; round < 4 && !done.load(); ++round) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        const std::int64_t pid = supervisor.pool().worker_pid(round % 2);
        if (pid > 0) ::kill(static_cast<pid_t>(pid), SIGKILL);
      }
    });
    const std::vector<ExperimentRecord> records = supervisor.run(ids);
    done.store(true);
    killer.join();

    ASSERT_EQ(records.size(), baseline.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(records[i].id, baseline[i].id) << i;
      if (records[i].result.crash_reason == fi::CrashReason::kQuarantined ||
          baseline[i].result.crash_reason == fi::CrashReason::kQuarantined) {
        continue;  // chaos timing may shift which run quarantines the killer
      }
      EXPECT_EQ(records[i].result.outcome, baseline[i].result.outcome) << i;
      EXPECT_DOUBLE_EQ(records[i].result.output_error,
                       baseline[i].result.output_error)
          << i;
    }
  }
  expect_no_zombie_children();
}

}  // namespace
}  // namespace ftb::campaign
