// Frame codec fuzz suite: the wire framing must reject -- with a
// diagnostic, and without crashing or hanging -- every 1-byte corruption
// and every truncation of a valid frame, plus arbitrary garbage.  This is
// the same discipline test_campaign_log.cpp applies to the journal format.
#include "net/frame.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ftb::net {
namespace {

Frame sample_frame() {
  Frame frame;
  frame.type = 7;
  for (int i = 0; i < 41; ++i) {
    frame.payload.push_back(static_cast<std::uint8_t>(i * 13 + 5));
  }
  return frame;
}

TEST(Frame, RoundTrip) {
  const Frame original = sample_frame();
  const std::vector<std::uint8_t> bytes = encode_frame(original);
  EXPECT_EQ(bytes.size(), frame_wire_size(original.payload.size()));
  std::string error;
  const auto decoded = decode_frame(bytes, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(*decoded, original);
}

TEST(Frame, EmptyPayloadRoundTrip) {
  Frame frame;
  frame.type = 1;
  const auto decoded = decode_frame(encode_frame(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, frame);
}

TEST(Frame, DecoderReassemblesByteAtATime) {
  const Frame a = sample_frame();
  Frame b;
  b.type = 2;
  b.payload = {0xff, 0x00, 0x7f};
  std::vector<std::uint8_t> stream = encode_frame(a);
  const std::vector<std::uint8_t> second = encode_frame(b);
  stream.insert(stream.end(), second.begin(), second.end());

  FrameDecoder decoder;
  std::vector<Frame> got;
  for (const std::uint8_t byte : stream) {
    decoder.feed(&byte, 1);
    Frame frame;
    std::string error;
    while (decoder.pop(&frame, &error) == FrameDecoder::Status::kFrame) {
      got.push_back(frame);
    }
    EXPECT_FALSE(decoder.poisoned()) << error;
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], a);
  EXPECT_EQ(got[1], b);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Frame, EveryByteCorruptionRejected) {
  const std::vector<std::uint8_t> bytes = encode_frame(sample_frame());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> rotted = bytes;
    rotted[i] ^= 0x5a;
    // One-shot decode: must reject with a diagnostic.
    std::string error;
    const auto decoded = decode_frame(rotted, &error);
    EXPECT_FALSE(decoded.has_value()) << "byte " << i << " xor 0x5a accepted";
    EXPECT_FALSE(error.empty()) << "byte " << i << ": no diagnostic";

    // Incremental decode: must never yield a frame (a corrupted length
    // field may legitimately leave the decoder waiting for more bytes, but
    // it must not hand out a wrong frame or crash).
    FrameDecoder decoder;
    decoder.feed(rotted.data(), rotted.size());
    Frame frame;
    std::string pop_error;
    EXPECT_NE(decoder.pop(&frame, &pop_error), FrameDecoder::Status::kFrame)
        << "byte " << i;
  }
}

TEST(Frame, EveryTruncationRejected) {
  const std::vector<std::uint8_t> bytes = encode_frame(sample_frame());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::string error;
    const auto decoded = decode_frame(
        std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + len), &error);
    EXPECT_FALSE(decoded.has_value()) << "prefix of " << len << " accepted";
    EXPECT_FALSE(error.empty()) << "prefix of " << len << ": no diagnostic";
  }
}

TEST(Frame, TrailingGarbageRejected) {
  std::vector<std::uint8_t> bytes = encode_frame(sample_frame());
  bytes.push_back(0x00);
  std::string error;
  EXPECT_FALSE(decode_frame(bytes, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Frame, RandomGarbageNeverYieldsFrames) {
  util::Rng rng(20260806);
  for (int round = 0; round < 64; ++round) {
    std::vector<std::uint8_t> garbage(256);
    for (std::uint8_t& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng() & 0xff);
    }
    FrameDecoder decoder;
    decoder.feed(garbage.data(), garbage.size());
    Frame frame;
    std::string error;
    const auto status = decoder.pop(&frame, &error);
    EXPECT_NE(status, FrameDecoder::Status::kFrame) << "round " << round;
    if (status == FrameDecoder::Status::kError) {
      EXPECT_FALSE(error.empty());
      EXPECT_TRUE(decoder.poisoned());
    }
  }
}

TEST(Frame, PoisonedDecoderStaysPoisoned) {
  std::vector<std::uint8_t> bytes = encode_frame(sample_frame());
  bytes[0] ^= 0xff;  // break the magic
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.pop(&frame), FrameDecoder::Status::kError);
  // Even after feeding a pristine frame, the stream stays dead: framing
  // was lost, so resynchronising would risk decoding mid-stream garbage.
  const std::vector<std::uint8_t> good = encode_frame(sample_frame());
  decoder.feed(good.data(), good.size());
  EXPECT_EQ(decoder.pop(&frame), FrameDecoder::Status::kError);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(Frame, OversizePayloadRejectedBeforeBuffering) {
  Frame big;
  big.type = 3;
  big.payload.assign(1024, 0xab);
  std::vector<std::uint8_t> bytes = encode_frame(big);
  FrameLimits limits;
  limits.max_payload = 512;  // below the declared length
  std::string error;
  EXPECT_FALSE(decode_frame(bytes, &error, limits).has_value());
  EXPECT_FALSE(error.empty());

  // The incremental decoder must reject from the header alone, without
  // waiting for max_payload bytes to arrive.
  FrameDecoder decoder(limits);
  decoder.feed(bytes.data(), kFrameHeaderSize);
  Frame frame;
  std::string pop_error;
  EXPECT_EQ(decoder.pop(&frame, &pop_error), FrameDecoder::Status::kError);
  EXPECT_FALSE(pop_error.empty());
}

}  // namespace
}  // namespace ftb::net
