// BoundaryStore: directory loading with per-file rejection diagnostics,
// key parsing, publication, and snapshot semantics.
#include "service/store.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "boundary/serialize.h"
#include "campaign/campaign.h"
#include "campaign/log.h"
#include "campaign/sampler.h"
#include "kernels/registry.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ftb::service {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ftb_store_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Writes a genuine artifact for daxpy@tiny@<seed> built from a real
  /// (tiny) campaign, so config keys and site counts line up.
  void write_real_artifact(std::uint64_t seed) {
    const fi::ProgramPtr program =
        kernels::make_program("daxpy", kernels::Preset::kTiny);
    const fi::GoldenRun golden = fi::run_golden(*program);
    util::Rng rng(seed);
    const auto ids =
        campaign::sample_uniform(rng, golden.sample_space_size(), 200);
    const auto records =
        campaign::run_experiments(*program, golden, ids, util::default_pool());
    campaign::CampaignLog log(program->config_key());
    log.append(records);
    const auto built = campaign::boundary_from_log(
        *program, golden, log, {true, 32}, util::default_pool());
    const std::string path =
        (dir_ / ("daxpy@tiny@" + std::to_string(seed) + ".boundary")).string();
    ASSERT_TRUE(boundary::save_to_file(built, program->config_key(), path));
  }

  fs::path dir_;
};

TEST_F(StoreTest, ParseKey) {
  const auto key = parse_store_key("cg@tiny@7");
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->kernel, "cg");
  EXPECT_EQ(key->preset, "tiny");
  EXPECT_EQ(key->seed, 7u);
  EXPECT_EQ(key->str(), "cg@tiny@7");

  std::string error;
  EXPECT_FALSE(parse_store_key("cg", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_store_key("cg@tiny", &error).has_value());
  EXPECT_FALSE(parse_store_key("cg@tiny@x", &error).has_value());
  EXPECT_FALSE(parse_store_key("@tiny@1", &error).has_value());
  EXPECT_FALSE(parse_store_key("cg@tiny@1extra@2", &error).has_value());
}

TEST_F(StoreTest, LoadsRealArtifact) {
  write_real_artifact(1);
  BoundaryStore store;
  std::vector<std::string> diagnostics;
  EXPECT_EQ(store.load_directory(dir_.string(), &diagnostics), 1u);
  EXPECT_TRUE(diagnostics.empty()) << diagnostics.front();
  const auto entry = store.find("daxpy@tiny@1");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->boundary.sites(), entry->golden.dynamic_instructions());
  EXPECT_FALSE(entry->config_key.empty());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.list().size(), 1u);
}

TEST_F(StoreTest, RejectsCorruptArtifactWithDiagnostic) {
  write_real_artifact(1);
  // Flip one byte in the middle of the artifact: the CRC frame must
  // reject it at load and the store must say why.
  const fs::path path = dir_ / "daxpy@tiny@1.boundary";
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(40);
  file.put('\x5a');
  file.close();

  BoundaryStore store;
  std::vector<std::string> diagnostics;
  EXPECT_EQ(store.load_directory(dir_.string(), &diagnostics), 0u);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_NE(diagnostics[0].find("daxpy@tiny@1.boundary"), std::string::npos)
      << diagnostics[0];
  EXPECT_EQ(store.find("daxpy@tiny@1"), nullptr);
}

TEST_F(StoreTest, RejectsUnparsableStemAndUnknownKernel) {
  {
    std::ofstream out(dir_ / "notakey.boundary", std::ios::binary);
    out << "junk";
  }
  {
    std::ofstream out(dir_ / "nosuchkernel@tiny@1.boundary", std::ios::binary);
    out << "junk";
  }
  BoundaryStore store;
  std::vector<std::string> diagnostics;
  EXPECT_EQ(store.load_directory(dir_.string(), &diagnostics), 0u);
  EXPECT_EQ(diagnostics.size(), 2u);
}

TEST_F(StoreTest, MissingDirectoryIsEmptyNotFatal) {
  BoundaryStore store;
  std::vector<std::string> diagnostics;
  EXPECT_EQ(store.load_directory((dir_ / "nope").string(), &diagnostics), 0u);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_NE(diagnostics[0].find("does not exist"), std::string::npos);
}

TEST_F(StoreTest, PublishMakesEntryVisibleAndSnapshotsSurviveReplace) {
  BoundaryStore store;
  const fi::ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  const boundary::FaultToleranceBoundary built(
      std::vector<double>(golden.dynamic_instructions(), 1.0));
  StoreKey key{"daxpy", "tiny", 5};
  std::string error;
  ASSERT_TRUE(store.publish(key, built, &error)) << error;

  const auto snapshot = store.find("daxpy@tiny@5");
  ASSERT_NE(snapshot, nullptr);

  // Re-publishing replaces the entry but the old snapshot stays valid --
  // that is the query plane's no-blocking guarantee.
  ASSERT_TRUE(store.publish(key, built, &error)) << error;
  EXPECT_EQ(snapshot->key.str(), "daxpy@tiny@5");
  EXPECT_NE(store.find("daxpy@tiny@5"), snapshot);
  EXPECT_EQ(store.size(), 1u);
}

TEST_F(StoreTest, PublishRejectsSiteCountMismatch) {
  BoundaryStore store;
  const boundary::FaultToleranceBoundary wrong(std::vector<double>(3, 1.0));
  std::string error;
  EXPECT_FALSE(store.publish({"daxpy", "tiny", 1}, wrong, &error));
  EXPECT_NE(error.find("sites"), std::string::npos) << error;
  EXPECT_FALSE(store.publish({"nosuchkernel", "tiny", 1}, wrong, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace ftb::service
