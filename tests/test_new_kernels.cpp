// Correctness + resiliency-character tests for the GEMM and Jacobi kernels.
#include <cmath>

#include <gtest/gtest.h>

#include "fi/executor.h"
#include "kernels/gemm.h"
#include "kernels/jacobi.h"
#include "linalg/csr.h"
#include "linalg/dense.h"
#include "util/rng.h"

namespace ftb::kernels {
namespace {

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

class GemmShapeSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(GemmShapeSweep, MatchesReferenceMultiply) {
  const auto [n, block] = GetParam();
  GemmConfig config;
  config.n = n;
  config.block = block;
  const GemmProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);

  util::Rng rng(config.seed);
  linalg::DenseMatrix a(n, n), b(n, n);
  for (double& v : a.data()) v = rng.next_double(-1.0, 1.0);
  for (double& v : b.data()) v = rng.next_double(-1.0, 1.0);
  const linalg::DenseMatrix expected = linalg::multiply(a, b);

  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      worst = std::fmax(
          worst, std::fabs(golden.output[i * n + j] - expected.at(i, j)));
    }
  }
  EXPECT_LT(worst, 1e-12 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{2, 1},
                      std::pair<std::size_t, std::size_t>{4, 2},
                      std::pair<std::size_t, std::size_t>{6, 3},
                      std::pair<std::size_t, std::size_t>{8, 4},
                      std::pair<std::size_t, std::size_t>{8, 8},
                      std::pair<std::size_t, std::size_t>{12, 4}));

TEST(GemmKernel, DynamicInstructionCount) {
  GemmConfig config;
  config.n = 8;
  config.block = 4;
  const GemmProgram program(config);
  // 2 * n^2 fills + (n / block) rank-block updates per C element.
  const std::uint64_t expected = 2 * 64 + (8 / 4) * 64;
  EXPECT_EQ(fi::count_dynamic_instructions(program), expected);
}

class GemmLinearity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GemmLinearity, OutputErrorIsLinearInInjectedError) {
  // Section 5: matrix products have f(eps) = C * eps.
  GemmConfig config;
  config.n = 6;
  config.block = 2;
  const GemmProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);
  const std::uint64_t site = GetParam() % golden.trace.size();

  const auto error_at = [&](double eps) {
    return fi::run_injected(program, golden, fi::Injection::add_delta(site, eps))
        .output_error;
  };
  const double e1 = error_at(1e-6);
  const double e5 = error_at(5e-6);
  if (e1 == 0.0) {
    EXPECT_EQ(e5, 0.0);
  } else {
    EXPECT_NEAR(e5 / e1, 5.0, 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Sites, GemmLinearity,
                         ::testing::Values(0u, 17u, 40u, 71u, 90u, 143u));

// ---------------------------------------------------------------------------
// Jacobi
// ---------------------------------------------------------------------------

TEST(JacobiKernel, SolvesThePoissonSystem) {
  JacobiConfig config;
  config.nx = config.ny = 5;
  config.sweeps = 400;  // Jacobi converges slowly; be generous
  const JacobiProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);

  const linalg::CsrMatrix a = linalg::CsrMatrix::poisson5(5, 5);
  util::Rng rng(config.rhs_seed);
  std::vector<double> b(25);
  for (double& v : b) v = rng.next_double(-1.0, 1.0);
  const std::vector<double> ax = a.multiply(golden.output);
  EXPECT_LT(linalg::linf_distance(ax, b), 1e-7);
}

TEST(JacobiKernel, StationaryErrorContraction) {
  // Inject a mid-run state error and verify extra sweeps shrink its effect
  // -- the self-healing character that distinguishes Jacobi from CG's
  // recursive residual.
  JacobiConfig few, many;
  few.nx = few.ny = many.nx = many.ny = 4;
  few.sweeps = 30;
  many.sweeps = 90;
  const JacobiProgram program_few(few);
  const JacobiProgram program_many(many);
  const fi::GoldenRun golden_few = fi::run_golden(program_few);
  const fi::GoldenRun golden_many = fi::run_golden(program_many);

  // Same absolute position in the sweep schedule: end of sweep 10.
  const std::uint64_t setup = 16 + 16;  // b fill + x0 fill
  const std::uint64_t site = setup + 10 * 16 + 7;
  const double eps = 1e-2;
  const double error_few =
      fi::run_injected(program_few, golden_few,
                       fi::Injection::add_delta(site, eps))
          .output_error;
  const double error_many =
      fi::run_injected(program_many, golden_many,
                       fi::Injection::add_delta(site, eps))
          .output_error;
  EXPECT_GT(error_few, 0.0);
  EXPECT_LT(error_many, error_few * 1e-3);
}

TEST(JacobiKernel, MoreResilientThanItsOwnTail) {
  // Early injections have more healing sweeps left: output error decreases
  // with injection depth for a fixed perturbation.
  JacobiConfig config;
  config.nx = config.ny = 4;
  config.sweeps = 40;
  const JacobiProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);
  const std::uint64_t setup = 32;
  const double eps = 1e-3;
  const double early =
      fi::run_injected(program, golden,
                       fi::Injection::add_delta(setup + 5 * 16 + 3, eps))
          .output_error;
  const double late =
      fi::run_injected(program, golden,
                       fi::Injection::add_delta(setup + 35 * 16 + 3, eps))
          .output_error;
  EXPECT_LT(early, late);
}

}  // namespace
}  // namespace ftb::kernels
