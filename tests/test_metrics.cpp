#include "boundary/metrics.h"

#include <vector>

#include <gtest/gtest.h>

#include "boundary/exhaustive.h"
#include "boundary/predictor.h"
#include "fi/fpbits.h"

namespace ftb::boundary {
namespace {

using fi::Outcome;

/// Ground-truth table where each bit flip of `value` at each site is
/// classified by a per-site error threshold (monotone by construction).
std::vector<Outcome> monotone_outcomes(std::span<const double> trace,
                                       std::span<const double> knees) {
  std::vector<Outcome> outcomes(trace.size() * fi::kBitsPerValue);
  for (std::size_t site = 0; site < trace.size(); ++site) {
    for (int bit = 0; bit < fi::kBitsPerValue; ++bit) {
      const std::size_t id = site * fi::kBitsPerValue + bit;
      if (fi::flip_is_nonfinite(trace[site], bit)) {
        outcomes[id] = Outcome::kCrash;
      } else {
        outcomes[id] = fi::bit_flip_error(trace[site], bit) <= knees[site]
                           ? Outcome::kMasked
                           : Outcome::kSdc;
      }
    }
  }
  return outcomes;
}

TEST(Metrics, PerfectBoundaryScoresPerfectly) {
  const std::vector<double> trace = {1.0, -2.0, 0.5};
  const std::vector<double> knees = {1e-3, 1e-6, 1e-1};
  const auto outcomes = monotone_outcomes(trace, knees);
  const FaultToleranceBoundary boundary = exhaustive_boundary(outcomes, trace);
  const EvaluationMetrics metrics =
      evaluate_boundary(boundary, trace, outcomes, {});
  EXPECT_DOUBLE_EQ(metrics.precision(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.recall(), 1.0);
  EXPECT_EQ(metrics.full.false_positive, 0u);
  EXPECT_EQ(metrics.full.false_negative, 0u);
}

TEST(Metrics, EmptyBoundaryHasVacuousPrecisionZeroRecall) {
  const std::vector<double> trace = {1.0, -2.0};
  const std::vector<double> knees = {1e-3, 1e-3};
  const auto outcomes = monotone_outcomes(trace, knees);
  const FaultToleranceBoundary empty(std::vector<double>(2, 0.0));
  const EvaluationMetrics metrics =
      evaluate_boundary(empty, trace, outcomes, {});
  EXPECT_DOUBLE_EQ(metrics.precision(), 1.0);  // vacuous: nothing predicted
  EXPECT_LT(metrics.recall(), 1.0);            // masked cases exist
  EXPECT_GT(metrics.full.false_negative, 0u);
}

TEST(Metrics, OverclaimingBoundaryLosesPrecision) {
  const std::vector<double> trace = {1.0};
  const std::vector<double> knees = {1e-6};
  const auto outcomes = monotone_outcomes(trace, knees);
  const FaultToleranceBoundary overclaiming(
      std::vector<double>{1e6});  // claims to tolerate nearly everything
  const EvaluationMetrics metrics =
      evaluate_boundary(overclaiming, trace, outcomes, {});
  EXPECT_LT(metrics.precision(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.recall(), 1.0);  // every masked case is covered
}

TEST(Metrics, UncertaintyUsesOnlySampledExperiments) {
  const std::vector<double> trace = {1.0};
  const std::vector<double> knees = {1e-6};
  const auto outcomes = monotone_outcomes(trace, knees);
  const FaultToleranceBoundary overclaiming(std::vector<double>{1e6});

  // Sample only experiments that are actually masked: on the sampled set
  // the overclaiming boundary looks perfect, revealing the gap between
  // uncertainty (sampled) and precision (full space).
  std::vector<std::uint64_t> sampled;
  for (int bit = 0; bit < fi::kBitsPerValue; ++bit) {
    if (outcomes[bit] == Outcome::kMasked) sampled.push_back(bit);
  }
  ASSERT_FALSE(sampled.empty());
  const EvaluationMetrics metrics =
      evaluate_boundary(overclaiming, trace, outcomes, sampled);
  EXPECT_DOUBLE_EQ(metrics.uncertainty(), 1.0);
  EXPECT_LT(metrics.precision(), 1.0);
}

TEST(Metrics, TrueSdcProfileCounts) {
  std::vector<Outcome> outcomes(2 * fi::kBitsPerValue, Outcome::kMasked);
  for (int bit = 0; bit < 16; ++bit) outcomes[bit] = Outcome::kSdc;
  for (int bit = 0; bit < 64; ++bit) {
    outcomes[fi::kBitsPerValue + bit] = Outcome::kCrash;
  }
  const std::vector<double> profile = true_sdc_profile(outcomes, 2);
  EXPECT_DOUBLE_EQ(profile[0], 0.25);
  EXPECT_DOUBLE_EQ(profile[1], 0.0);  // crashes are not SDC
  EXPECT_NEAR(overall_sdc_ratio(outcomes), 16.0 / 128.0, 1e-12);
}

TEST(Metrics, DeltaSdcProfile) {
  const std::vector<double> golden = {0.5, 0.25};
  const std::vector<double> predicted = {0.25, 0.5};
  const std::vector<double> delta = delta_sdc_profile(golden, predicted);
  EXPECT_DOUBLE_EQ(delta[0], 0.25);
  EXPECT_DOUBLE_EQ(delta[1], -0.25);
}

TEST(Metrics, MonotonicityDetection) {
  const std::vector<double> trace = {1.0, 1.0};
  // Site 0: monotone knee.  Site 1: masked above an SDC (non-monotone).
  std::vector<Outcome> outcomes = monotone_outcomes(trace, {{1e-3, 1e-3}});
  // At site 1, make the largest finite-error flip masked even though
  // smaller flips are SDC.
  int largest_bit = -1;
  double largest_error = 0.0;
  for (int bit = 0; bit < fi::kBitsPerValue; ++bit) {
    if (fi::flip_is_nonfinite(1.0, bit)) continue;
    const double e = fi::bit_flip_error(1.0, bit);
    if (e > largest_error) {
      largest_error = e;
      largest_bit = bit;
    }
  }
  ASSERT_GE(largest_bit, 0);
  outcomes[fi::kBitsPerValue + largest_bit] = Outcome::kMasked;

  const MonotonicityReport report = analyze_monotonicity(outcomes, trace);
  EXPECT_EQ(report.total_sites, 2u);
  EXPECT_EQ(report.non_monotonic_sites, 1u);
  EXPECT_DOUBLE_EQ(report.fraction(), 0.5);
}

}  // namespace
}  // namespace ftb::boundary
