// Edge coverage for tracer modes added after the core suite: phase
// announcements across modes and the streaming comparator used by the
// low-memory pipeline.
#include <vector>

#include <gtest/gtest.h>

#include "fi/tracer.h"

namespace ftb::fi {
namespace {

std::vector<double> drive(Tracer& tracer, std::size_t steps = 6) {
  std::vector<double> produced;
  double accumulator = 0.5;
  for (std::size_t i = 0; i < steps; ++i) {
    tracer.phase(i == 0 ? "head" : "body");  // phases legal in any mode
    accumulator = tracer.step(accumulator * 1.25 + 0.125);
    produced.push_back(accumulator);
  }
  return produced;
}

TEST(TracerPhases, RecordedOnlyWhenSinkProvided) {
  std::vector<double> trace;
  std::vector<PhaseMark> phases;
  Tracer with_sink = Tracer::recorder(trace, &phases);
  drive(with_sink);
  ASSERT_EQ(phases.size(), 6u);  // one announcement per step in drive()
  EXPECT_EQ(phases[0].name, "head");
  EXPECT_EQ(phases[0].begin, 0u);
  EXPECT_EQ(phases[3].name, "body");
  EXPECT_EQ(phases[3].begin, 3u);

  // No sink: announcements are free no-ops in every mode.
  trace.clear();
  Tracer no_sink = Tracer::recorder(trace);
  drive(no_sink);
  Tracer counting = Tracer::counter();
  drive(counting);
  Tracer injecting = Tracer::injector(Injection::bit_flip(2, 1));
  drive(injecting);
  SUCCEED();
}

TEST(TracerStream, MatchesBufferedComparatorExactly) {
  std::vector<double> golden;
  {
    Tracer recorder = Tracer::recorder(golden);
    drive(recorder);
  }
  const Injection injection = Injection::bit_flip(2, 30);

  std::vector<double> buffered(golden.size(), 0.0);
  {
    Tracer comparator = Tracer::comparator(injection, golden, buffered);
    drive(comparator);
  }

  struct StreamState {
    const std::vector<double>* golden;
    std::size_t cursor = 0;
    std::vector<double> observed;
  };
  StreamState state{&golden, 0, std::vector<double>(golden.size(), 0.0)};
  Tracer::StreamHooks hooks;
  hooks.ctx = &state;
  hooks.next_golden = [](void* ctx) {
    auto* s = static_cast<StreamState*>(ctx);
    return (*s->golden)[s->cursor++];
  };
  hooks.observe = [](void* ctx, std::uint64_t site, double error) {
    static_cast<StreamState*>(ctx)->observed[site] = error;
  };
  Tracer streaming = Tracer::stream_comparator(injection, hooks);
  drive(streaming);

  EXPECT_EQ(state.cursor, golden.size());  // pulled exactly one per step
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_DOUBLE_EQ(state.observed[i], buffered[i]) << i;
  }
}

TEST(TracerStream, ObserverOnlyCalledFromInjectionSiteOn) {
  std::vector<double> golden;
  {
    Tracer recorder = Tracer::recorder(golden);
    drive(recorder);
  }
  struct StreamState {
    const std::vector<double>* golden;
    std::size_t cursor = 0;
    std::uint64_t first_observed = ~std::uint64_t{0};
  };
  StreamState state{&golden};
  Tracer::StreamHooks hooks;
  hooks.ctx = &state;
  hooks.next_golden = [](void* ctx) {
    auto* s = static_cast<StreamState*>(ctx);
    return (*s->golden)[s->cursor++];
  };
  hooks.observe = [](void* ctx, std::uint64_t site, double) {
    auto* s = static_cast<StreamState*>(ctx);
    if (site < s->first_observed) s->first_observed = site;
  };
  const std::uint64_t injection_site = 3;
  Tracer streaming =
      Tracer::stream_comparator(Injection::bit_flip(injection_site, 5), hooks);
  drive(streaming);
  EXPECT_EQ(state.first_observed, injection_site);
}

TEST(TracerStream, NullObserverIsLegal) {
  std::vector<double> golden;
  {
    Tracer recorder = Tracer::recorder(golden);
    drive(recorder);
  }
  struct StreamState {
    const std::vector<double>* golden;
    std::size_t cursor = 0;
  };
  StreamState state{&golden};
  Tracer::StreamHooks hooks;
  hooks.ctx = &state;
  hooks.next_golden = [](void* ctx) {
    auto* s = static_cast<StreamState*>(ctx);
    return (*s->golden)[s->cursor++];
  };
  hooks.observe = nullptr;
  Tracer streaming =
      Tracer::stream_comparator(Injection::bit_flip(1, 4), hooks);
  drive(streaming);
  EXPECT_TRUE(streaming.fired());
}

}  // namespace
}  // namespace ftb::fi
