// ABFT detector suite: the detector primitives, the registry's decorated
// kernel names ("<kernel>[+tN][+det]"), and the campaign-level contract
// that arming a detector only ever reclassifies SDC outcomes as Detected
// (coverage strictly between 0 and 1 on real kernels).
#include "fi/detector.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/sampler.h"
#include "fi/executor.h"
#include "kernels/registry.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ftb {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(ChecksumDetector, FiresOnCorruptionAboveTolerance) {
  const fi::ChecksumDetector detector(/*atol=*/1e-9, /*rtol=*/1e-9);
  const std::vector<double> reference = {1.0, 2.0, 3.0};
  std::vector<double> corrupted = reference;
  corrupted[1] += 0.5;
  EXPECT_TRUE(detector.fires(corrupted, reference));
  EXPECT_FALSE(detector.fires(reference, reference));
}

TEST(ChecksumDetector, ToleratesRoundoff) {
  const fi::ChecksumDetector detector(/*atol=*/1e-6, /*rtol=*/1e-6);
  const std::vector<double> reference = {1.0, 2.0, 3.0};
  std::vector<double> nudged = reference;
  nudged[0] += 1e-12;  // below atol + rtol * |sum|
  EXPECT_FALSE(detector.fires(nudged, reference));
}

TEST(ChecksumDetector, BlindToExactCancellation) {
  // The documented lossiness: equal-and-opposite corruptions cancel in a
  // total-sum statistic, which is exactly why coverage < 1.
  const fi::ChecksumDetector detector(/*atol=*/1e-9, /*rtol=*/1e-9);
  const std::vector<double> reference = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> cancelled = reference;
  cancelled[0] += 0.5;
  cancelled[3] -= 0.5;
  EXPECT_FALSE(detector.fires(cancelled, reference));
}

TEST(RowSumDetector, SeesCorruptionChecksumCancels) {
  // Alternating-sign row folding: +0.5 in row 0 and -0.5 in row 1 cancel
  // for the plain checksum but add for the row-sum statistic.
  const fi::RowSumDetector row_detector(/*stride=*/2, /*atol=*/1e-9,
                                        /*rtol=*/1e-9);
  const fi::ChecksumDetector checksum(/*atol=*/1e-9, /*rtol=*/1e-9);
  const std::vector<double> reference = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> cancelled = reference;
  cancelled[0] += 0.5;  // row 0
  cancelled[2] -= 0.5;  // row 1
  EXPECT_FALSE(checksum.fires(cancelled, reference));
  EXPECT_TRUE(row_detector.fires(cancelled, reference));
}

TEST(Detector, NonFiniteStatisticAlwaysFires) {
  const fi::ChecksumDetector detector(/*atol=*/1e300, /*rtol=*/1e300);
  const std::vector<double> reference = {1.0, 2.0};
  EXPECT_TRUE(detector.fires(std::vector<double>{1.0, kNan}, reference));
}

TEST(InvariantDetector, RunsTheSuppliedClosure) {
  const fi::InvariantDetector detector(
      "norm", [](std::span<const double> v) { return std::fabs(v[0]); },
      /*atol=*/1e-9, /*rtol=*/1e-9);
  EXPECT_EQ(detector.name(), "norm");
  const std::vector<double> reference = {2.0};
  EXPECT_TRUE(detector.fires(std::vector<double>{3.0}, reference));
  EXPECT_FALSE(detector.fires(std::vector<double>{-2.0}, reference));
}

TEST(RegistryDecorations, ParseThreadAndDetectorOptions) {
  const fi::ProgramPtr plain =
      kernels::make_program("spmv", kernels::Preset::kTiny);
  EXPECT_EQ(plain->detector(), nullptr);
  EXPECT_EQ(plain->config_key().find(":thr="), std::string::npos);
  EXPECT_EQ(plain->config_key().find(":det="), std::string::npos);

  const fi::ProgramPtr decorated =
      kernels::make_program("spmv+t2+det", kernels::Preset::kTiny);
  EXPECT_EQ(decorated->name(), "spmv");
  ASSERT_NE(decorated->detector(), nullptr);
  EXPECT_EQ(decorated->detector()->name(), "checksum");
  EXPECT_NE(decorated->config_key().find(":thr=2"), std::string::npos)
      << decorated->config_key();
  EXPECT_NE(decorated->config_key().find(":det=1"), std::string::npos)
      << decorated->config_key();

  const fi::ProgramPtr cg =
      kernels::make_program("cg+det", kernels::Preset::kTiny);
  ASSERT_NE(cg->detector(), nullptr);
  EXPECT_EQ(cg->detector()->name(), "cg-residual");

  const fi::ProgramPtr stencil =
      kernels::make_program("stencil2d+t4+det", kernels::Preset::kTiny);
  ASSERT_NE(stencil->detector(), nullptr);
  EXPECT_EQ(stencil->detector()->name(), "row-sum");

  const fi::ProgramPtr gemm =
      kernels::make_program("gemm+det", kernels::Preset::kTiny);
  ASSERT_NE(gemm->detector(), nullptr);
}

TEST(RegistryDecorations, RejectUnsupportedCombinations) {
  EXPECT_THROW(kernels::make_program("lu+det", kernels::Preset::kTiny),
               std::invalid_argument);
  EXPECT_THROW(kernels::make_program("gemm+t2", kernels::Preset::kTiny),
               std::invalid_argument);
  EXPECT_THROW(kernels::make_program("daxpy+det", kernels::Preset::kTiny),
               std::invalid_argument);
  EXPECT_THROW(kernels::make_program("cg+t0", kernels::Preset::kTiny),
               std::invalid_argument);
  EXPECT_THROW(kernels::make_program("cg+t999", kernels::Preset::kTiny),
               std::invalid_argument);
  EXPECT_THROW(kernels::make_program("cg+t2x", kernels::Preset::kTiny),
               std::invalid_argument);
  EXPECT_THROW(kernels::make_program("cg+bogus", kernels::Preset::kTiny),
               std::invalid_argument);
  EXPECT_THROW(kernels::make_program("nosuch+det", kernels::Preset::kTiny),
               std::invalid_argument);
}

/// Runs the same uniform experiment sample on a kernel with and without its
/// detector and checks the reclassification contract.  `lossy` kernels use
/// one-scalar checksums, which provably miss some corruptions (coverage
/// strictly below 1); CG recomputes the residual, which can catch every
/// sampled SDC.
void expect_detector_shifts_sdc_split(const char* kernel, bool lossy) {
  SCOPED_TRACE(kernel);
  const fi::ProgramPtr plain =
      kernels::make_program(kernel, kernels::Preset::kTiny);
  const fi::ProgramPtr armed = kernels::make_program(
      std::string(kernel) + "+det", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*plain);
  const fi::GoldenRun golden_armed = fi::run_golden(*armed);
  // The detector must not perturb the computation itself.
  EXPECT_EQ(golden.trace, golden_armed.trace);
  EXPECT_EQ(golden.output, golden_armed.output);

  util::Rng rng(23);
  const std::vector<campaign::ExperimentId> ids =
      campaign::sample_uniform(rng, golden.sample_space_size(), 1500);
  util::ThreadPool pool(4);
  const auto plain_records =
      campaign::run_experiments(*plain, golden, ids, pool);
  const auto armed_records =
      campaign::run_experiments(*armed, golden_armed, ids, pool);
  const campaign::OutcomeCounts before =
      campaign::count_outcomes(plain_records);
  const campaign::OutcomeCounts after =
      campaign::count_outcomes(armed_records);

  // Arming a detector reclassifies SDC -> Detected and nothing else.
  EXPECT_EQ(before.detected, 0u);
  EXPECT_EQ(after.masked, before.masked);
  EXPECT_EQ(after.crash, before.crash);
  EXPECT_EQ(after.hang, before.hang);
  EXPECT_EQ(after.sdc + after.detected, before.sdc);
  // The acceptance criterion: a *measurable* shift in the SDC split.
  EXPECT_GT(after.detected, 0u);
  EXPECT_GT(after.detected_coverage(), 0.0);
  EXPECT_LE(after.detected_coverage(), 1.0);
  if (lossy) {
    // Checksum detectors provably miss some corruptions: coverage < 1.
    EXPECT_GT(after.sdc, 0u);
    EXPECT_LT(after.detected_coverage(), 1.0);
  }

  // Per-record: every Detected outcome carries the detector_fired flag.
  for (const campaign::ExperimentRecord& record : armed_records) {
    if (record.result.outcome == fi::Outcome::kDetected) {
      EXPECT_TRUE(record.result.detector_fired);
    }
  }
}

TEST(DetectorCampaign, ShiftsSdcSplitOnSpmv) {
  expect_detector_shifts_sdc_split("spmv", /*lossy=*/true);
}

TEST(DetectorCampaign, ShiftsSdcSplitOnCg) {
  expect_detector_shifts_sdc_split("cg", /*lossy=*/false);
}

TEST(DetectorCampaign, ShiftsSdcSplitOnGemm) {
  expect_detector_shifts_sdc_split("gemm", /*lossy=*/true);
}

}  // namespace
}  // namespace ftb
