#include "boundary/boundary.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace ftb::boundary {
namespace {

TEST(Boundary, PredictMaskedIsInclusive) {
  const FaultToleranceBoundary boundary({1.0, 0.0, 2.5});
  EXPECT_TRUE(boundary.predict_masked(0, 1.0));   // <= threshold
  EXPECT_TRUE(boundary.predict_masked(0, 0.999));
  EXPECT_FALSE(boundary.predict_masked(0, 1.001));
  // Unknown site (threshold 0): only zero-magnitude errors tolerated.
  EXPECT_TRUE(boundary.predict_masked(1, 0.0));
  EXPECT_FALSE(boundary.predict_masked(1, 1e-300));
}

TEST(Boundary, UnboundedSiteToleratesEverything) {
  const FaultToleranceBoundary boundary(
      {FaultToleranceBoundary::kUnbounded});
  EXPECT_TRUE(
      boundary.predict_masked(0, std::numeric_limits<double>::max()));
}

TEST(Boundary, ExactFlags) {
  const FaultToleranceBoundary plain({1.0, 2.0});
  EXPECT_FALSE(plain.is_exact(0));
  const FaultToleranceBoundary flagged({1.0, 2.0}, {0, 1});
  EXPECT_FALSE(flagged.is_exact(0));
  EXPECT_TRUE(flagged.is_exact(1));
}

TEST(Boundary, InformedSites) {
  const FaultToleranceBoundary boundary({0.0, 1.0, 0.0, 3.0});
  EXPECT_EQ(boundary.informed_sites(), 2u);
  EXPECT_EQ(boundary.sites(), 4u);
}

TEST(Boundary, MergeMaxTakesPointwiseMax) {
  FaultToleranceBoundary a({1.0, 5.0, 0.0}, {1, 0, 0});
  const FaultToleranceBoundary b({2.0, 3.0, 4.0}, {0, 1, 0});
  a.merge_max(b);
  EXPECT_DOUBLE_EQ(a.threshold(0), 2.0);
  EXPECT_DOUBLE_EQ(a.threshold(1), 5.0);
  EXPECT_DOUBLE_EQ(a.threshold(2), 4.0);
  EXPECT_TRUE(a.is_exact(0));
  EXPECT_TRUE(a.is_exact(1));
  EXPECT_FALSE(a.is_exact(2));
}

TEST(Boundary, DefaultIsEmpty) {
  const FaultToleranceBoundary boundary;
  EXPECT_EQ(boundary.sites(), 0u);
  EXPECT_EQ(boundary.informed_sites(), 0u);
}

}  // namespace
}  // namespace ftb::boundary
