// Chaos layer tests: the fault stream must be seeded-deterministic (a
// failing chaos run replays exactly), dormant by default, configurable from
// FTB_CHAOS, and absorbed by the I/O retry loops it is pointed at.
#include "chaos/chaos.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/socket.h"

namespace ftb::chaos {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override {
    disable();
    reset_stats();
    ::unsetenv("FTB_CHAOS");
  }
};

/// One observed veneer call: (return value, errno when negative).
struct Observed {
  ssize_t ret;
  int err;
  bool operator==(const Observed&) const = default;
};

std::vector<Observed> run_write_sequence(int fd, int calls) {
  std::vector<Observed> trace;
  const char buf[64] = {0};
  for (int i = 0; i < calls; ++i) {
    errno = 0;
    const ssize_t ret = chaos::write(fd, buf, sizeof(buf));
    trace.push_back({ret, ret < 0 ? errno : 0});
  }
  return trace;
}

TEST_F(ChaosTest, SameSeedReplaysTheSameFaultStream) {
  const int fd = ::open("/dev/null", O_WRONLY);
  ASSERT_GE(fd, 0);
  ChaosOptions options;
  options.enabled = true;
  options.seed = 42;
  options.short_io = 0.3;
  options.eintr = 0.2;
  options.write_error = 0.2;
  options.fsync_error = 0.1;

  configure(options);
  const auto first = run_write_sequence(fd, 200);
  configure(options);  // reseed
  const auto second = run_write_sequence(fd, 200);
  ::close(fd);

  EXPECT_EQ(first, second);
  // With these probabilities a 200-call run without a single fault would
  // mean the stream is dead.
  EXPECT_GT(stats().total(), 0u);
}

TEST_F(ChaosTest, DisabledVeneersArePassThroughs) {
  disable();
  reset_stats();
  // fsync needs a real file (character devices may reject it).
  char name[] = "/tmp/ftb_chaos_XXXXXX";
  const int fd = ::mkstemp(name);
  ASSERT_GE(fd, 0);
  const char buf[64] = {1};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(chaos::write(fd, buf, sizeof(buf)),
              static_cast<ssize_t>(sizeof(buf)));
  }
  EXPECT_EQ(chaos::fsync(fd), 0);
  ::close(fd);
  ::unlink(name);
  EXPECT_EQ(stats().total(), 0u);
  EXPECT_FALSE(enabled());
}

TEST_F(ChaosTest, ConfiguresFromEnvironment) {
  ::setenv("FTB_CHAOS", "seed=9,short_io=0.5,eintr=0.25,fsync_error=0.125", 1);
  std::string summary;
  ASSERT_TRUE(configure_from_env(&summary));
  EXPECT_NE(summary.find("seed=9"), std::string::npos);
  const ChaosOptions options = current_options();
  EXPECT_TRUE(options.enabled);
  EXPECT_EQ(options.seed, 9u);
  EXPECT_DOUBLE_EQ(options.short_io, 0.5);
  EXPECT_DOUBLE_EQ(options.eintr, 0.25);
  EXPECT_DOUBLE_EQ(options.write_error, 0.0);
  EXPECT_DOUBLE_EQ(options.fsync_error, 0.125);

  ::setenv("FTB_CHAOS", "off", 1);
  EXPECT_FALSE(configure_from_env());
  EXPECT_FALSE(enabled());

  ::unsetenv("FTB_CHAOS");
  EXPECT_FALSE(configure_from_env());
  EXPECT_FALSE(enabled());

  // Unknown keys are tolerated (forward compatibility).
  ::setenv("FTB_CHAOS", "seed=3,future_knob=1,short_io=0.1", 1);
  EXPECT_TRUE(configure_from_env());
  EXPECT_EQ(current_options().seed, 3u);
}

TEST_F(ChaosTest, SocketRetryLoopsAbsorbShortIoAndEintr) {
  if (!net::net_supported()) GTEST_SKIP() << "no socket support";
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  ChaosOptions options;
  options.enabled = true;
  options.seed = 7;
  options.short_io = 0.4;
  options.eintr = 0.3;
  configure(options);

  // send_all/recv loops must deliver every byte intact despite the storm.
  std::vector<std::uint8_t> payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  std::string error;
  ASSERT_TRUE(net::send_all(fds[0], payload.data(), payload.size(), &error))
      << error;
  std::vector<std::uint8_t> received;
  while (received.size() < payload.size()) {
    std::uint8_t chunk[512];
    const ssize_t got = chaos::recv(fds[1], chunk, sizeof(chunk), 0);
    if (got < 0) {
      ASSERT_EQ(errno, EINTR);
      continue;
    }
    ASSERT_GT(got, 0);
    received.insert(received.end(), chunk, chunk + got);
  }
  ::close(fds[0]);
  ::close(fds[1]);

  EXPECT_EQ(received, payload);
  const ChaosStats after = stats();
  EXPECT_GT(after.short_writes + after.short_reads + after.eintr_faults, 0u);
}

}  // namespace
}  // namespace ftb::chaos
