// Job ledger tests: replay order, torn-tail and CRC handling, compaction,
// next-id continuity, and the fsync-before-ack contract under injected
// fsync failure.
#include "service/ledger.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/chaos.h"
#include "util/cache.h"

namespace ftb::service {
namespace {

namespace fs = std::filesystem;

class LedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ftb_ledger_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "jobs.ledger").string();
  }

  void TearDown() override {
    chaos::disable();
    fs::remove_all(dir_);
  }

  static SubmitCampaignReq request(std::uint64_t seed) {
    SubmitCampaignReq req;
    req.kernel = "daxpy";
    req.preset = "tiny";
    req.seed = seed;
    req.batch = 123;
    req.workers = 3;
    req.flush_every = 17;
    req.timeout_ms = 999;
    req.quarantine_after = 5;
    return req;
  }

  /// Appends raw bytes to the ledger file, bypassing the API (simulating
  /// the torn tail a crash leaves behind).
  void append_raw(const std::vector<std::uint8_t>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  /// A well-formed state record for `job`, framed the way the ledger does.
  std::vector<std::uint8_t> state_record(std::uint64_t job, JobState state,
                                         const std::string& note) {
    util::BinaryWriter payload;
    payload.put_u64(job);
    payload.put_u64(static_cast<std::uint64_t>(state));
    payload.put_string(note);
    std::vector<std::uint8_t> out;
    const auto& body = payload.buffer();
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(body.size() >> (8 * i)));
    }
    const std::uint32_t crc = util::crc32(body.data(), body.size());
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    }
    out.insert(out.end(), body.begin(), body.end());
    return out;
  }

  static SubmitRecomputeReq recompute_request(std::uint64_t seed) {
    SubmitRecomputeReq req;
    req.kernel = "cg";
    req.preset = "tiny";
    req.seed = seed;
    req.section_batch = 64;
    req.section_batches = "iterations=96";
    req.force = true;
    req.workers = 2;
    req.flush_every = 32;
    req.timeout_ms = 777;
    req.quarantine_after = 4;
    return req;
  }

  /// Frames `payload` the way the ledger does (u32 length, u32 CRC, body).
  static std::vector<std::uint8_t> frame(
      const std::vector<std::uint8_t>& body) {
    std::vector<std::uint8_t> out;
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(body.size() >> (8 * i)));
    }
    const std::uint32_t crc = util::crc32(body.data(), body.size());
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    }
    out.insert(out.end(), body.begin(), body.end());
    return out;
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(LedgerTest, MissingFileIsAnEmptyLedger) {
  const auto replay = JobLedger::replay_file(path_);
  EXPECT_TRUE(replay.pending.empty());
  EXPECT_EQ(replay.next_job_id, 1u);
  EXPECT_EQ(replay.records, 0u);
  EXPECT_EQ(replay.torn_records, 0u);
}

TEST_F(LedgerTest, ReplayPreservesSubmitOrderAndStates) {
  {
    JobLedger ledger;
    ASSERT_TRUE(ledger.open(path_, nullptr));
    ASSERT_TRUE(ledger.append_submitted(1, request(1)));
    ASSERT_TRUE(ledger.append_submitted(2, request(2)));
    ASSERT_TRUE(ledger.append_submitted(3, request(3)));
    ASSERT_TRUE(ledger.append_state(1, JobState::kRunning, ""));
    ASSERT_TRUE(ledger.append_state(2, JobState::kRunning, ""));
    ASSERT_TRUE(ledger.append_state(2, JobState::kDone, "daxpy@tiny@2"));
  }
  const auto replay = JobLedger::replay_file(path_);
  EXPECT_EQ(replay.records, 6u);
  EXPECT_EQ(replay.torn_records, 0u);
  EXPECT_EQ(replay.next_job_id, 4u);
  ASSERT_EQ(replay.pending.size(), 2u);
  EXPECT_EQ(replay.pending[0].id, 1u);
  EXPECT_EQ(replay.pending[0].state, JobState::kRunning);
  EXPECT_EQ(replay.pending[1].id, 3u);
  EXPECT_EQ(replay.pending[1].state, JobState::kSubmitted);
  ASSERT_EQ(replay.terminal_jobs.size(), 1u);
  EXPECT_EQ(replay.terminal_jobs[0].id, 2u);
  EXPECT_EQ(replay.terminal_jobs[0].state, JobState::kDone);
  EXPECT_EQ(replay.terminal_jobs[0].note, "daxpy@tiny@2");

  // The request fields round-trip exactly (they re-enqueue the job).
  const SubmitCampaignReq want = request(3);
  const SubmitCampaignReq& got = replay.pending[1].req;
  EXPECT_EQ(got.kernel, want.kernel);
  EXPECT_EQ(got.preset, want.preset);
  EXPECT_EQ(got.seed, want.seed);
  EXPECT_EQ(got.batch, want.batch);
  EXPECT_EQ(got.workers, want.workers);
  EXPECT_EQ(got.flush_every, want.flush_every);
  EXPECT_EQ(got.timeout_ms, want.timeout_ms);
  EXPECT_EQ(got.quarantine_after, want.quarantine_after);
}

TEST_F(LedgerTest, TornTailIsDroppedNotTrusted) {
  {
    JobLedger ledger;
    ASSERT_TRUE(ledger.open(path_, nullptr));
    ASSERT_TRUE(ledger.append_submitted(1, request(1)));
  }
  // A crash mid-append: a record header that promises more bytes than
  // exist.
  append_raw({0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02});
  const auto replay = JobLedger::replay_file(path_);
  EXPECT_EQ(replay.records, 1u);
  EXPECT_EQ(replay.torn_records, 1u);
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].id, 1u);
  EXPECT_FALSE(replay.diagnostics.empty());
}

TEST_F(LedgerTest, CrcCorruptionDropsTheTail) {
  {
    JobLedger ledger;
    ASSERT_TRUE(ledger.open(path_, nullptr));
    ASSERT_TRUE(ledger.append_submitted(1, request(1)));
    ASSERT_TRUE(ledger.append_submitted(2, request(2)));
  }
  // Flip one payload byte of the last record.
  std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(-1, std::ios::end);
  file.put(static_cast<char>(0xff));
  file.close();

  const auto replay = JobLedger::replay_file(path_);
  EXPECT_EQ(replay.torn_records, 1u);
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].id, 1u);
}

TEST_F(LedgerTest, StateRecordForUnknownJobIsDiagnosedAndIgnored) {
  {
    JobLedger ledger;
    ASSERT_TRUE(ledger.open(path_, nullptr));
    ASSERT_TRUE(ledger.append_submitted(1, request(1)));
  }
  append_raw(state_record(99, JobState::kDone, "ghost"));
  const auto replay = JobLedger::replay_file(path_);
  EXPECT_EQ(replay.torn_records, 0u);
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_TRUE(replay.terminal_jobs.empty());
  // next_job_id still advances past the ghost so ids never collide.
  EXPECT_EQ(replay.next_job_id, 100u);
  bool mentioned = false;
  for (const auto& line : replay.diagnostics) {
    mentioned = mentioned || line.find("unknown job 99") != std::string::npos;
  }
  EXPECT_TRUE(mentioned);
}

TEST_F(LedgerTest, OpenCompactsAwayTerminalHistoryAndTornTails) {
  {
    JobLedger ledger;
    ASSERT_TRUE(ledger.open(path_, nullptr));
    ASSERT_TRUE(ledger.append_submitted(1, request(1)));
    ASSERT_TRUE(ledger.append_state(1, JobState::kDone, "daxpy@tiny@1"));
    ASSERT_TRUE(ledger.append_submitted(2, request(2)));
    ASSERT_TRUE(ledger.append_state(2, JobState::kRunning, ""));
  }
  append_raw({0x11, 0x22, 0x33});  // torn tail

  JobLedger::ReplayResult replay;
  JobLedger ledger;
  ASSERT_TRUE(ledger.open(path_, &replay));
  EXPECT_EQ(replay.terminal, 1u);
  EXPECT_EQ(replay.torn_records, 1u);
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].id, 2u);
  ASSERT_TRUE(ledger.append_submitted(3, request(3)));
  ledger.close();

  // The compacted file replays clean: job 2 (still running) and job 3,
  // nothing terminal, no torn bytes.
  const auto after = JobLedger::replay_file(path_);
  EXPECT_EQ(after.torn_records, 0u);
  EXPECT_EQ(after.terminal, 0u);
  ASSERT_EQ(after.pending.size(), 2u);
  EXPECT_EQ(after.pending[0].id, 2u);
  EXPECT_EQ(after.pending[0].state, JobState::kRunning);
  EXPECT_EQ(after.pending[1].id, 3u);
}

TEST_F(LedgerTest, GarbageFileIsRejectedThenRecoveredByCompaction) {
  append_raw({'n', 'o', 't', ' ', 'a', ' ', 'l', 'e', 'd', 'g', 'e', 'r',
              '!', '!', '!', '!', '!'});
  const auto replay = JobLedger::replay_file(path_);
  EXPECT_EQ(replay.torn_records, 1u);
  EXPECT_TRUE(replay.pending.empty());

  JobLedger ledger;
  ASSERT_TRUE(ledger.open(path_, nullptr));
  ASSERT_TRUE(ledger.append_submitted(1, request(1)));
  ledger.close();
  const auto after = JobLedger::replay_file(path_);
  EXPECT_EQ(after.torn_records, 0u);
  ASSERT_EQ(after.pending.size(), 1u);
}

// The fsync-before-ack contract: when the fsync fails, the append reports
// failure -- the caller must NOT ack the submission.
TEST_F(LedgerTest, AppendFailsWhenFsyncFails) {
  JobLedger ledger;
  ASSERT_TRUE(ledger.open(path_, nullptr));
  ASSERT_TRUE(ledger.append_submitted(1, request(1)));

  chaos::ChaosOptions options;
  options.enabled = true;
  options.seed = 5;
  options.fsync_error = 1.0;
  chaos::configure(options);
  std::string error;
  EXPECT_FALSE(ledger.append_submitted(2, request(2), &error));
  EXPECT_FALSE(error.empty());
  chaos::disable();
  ledger.close();

  // The doomed append rolled back: only job 1 replays.
  const auto replay = JobLedger::replay_file(path_);
  EXPECT_EQ(replay.torn_records, 0u);
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].id, 1u);
}

TEST_F(LedgerTest, RecomputeSubmitRoundTripsAndSurvivesCompaction) {
  {
    JobLedger ledger;
    ASSERT_TRUE(ledger.open(path_, nullptr));
    ASSERT_TRUE(ledger.append_submitted(1, request(1)));
    ASSERT_TRUE(ledger.append_submitted_recompute(2, recompute_request(2)));
    ASSERT_TRUE(ledger.append_state(2, JobState::kRunning, ""));
  }
  const auto replay = JobLedger::replay_file(path_);
  ASSERT_EQ(replay.pending.size(), 2u);
  EXPECT_EQ(replay.pending[0].kind, JobKind::kCampaign);
  ASSERT_EQ(replay.pending[1].kind, JobKind::kRecompute);
  EXPECT_EQ(replay.pending[1].state, JobState::kRunning);

  const SubmitRecomputeReq want = recompute_request(2);
  const SubmitRecomputeReq& got = replay.pending[1].recompute;
  EXPECT_EQ(got.kernel, want.kernel);
  EXPECT_EQ(got.preset, want.preset);
  EXPECT_EQ(got.seed, want.seed);
  EXPECT_EQ(got.section_batch, want.section_batch);
  EXPECT_EQ(got.section_batches, want.section_batches);
  EXPECT_EQ(got.force, want.force);
  EXPECT_EQ(got.workers, want.workers);
  EXPECT_EQ(got.flush_every, want.flush_every);
  EXPECT_EQ(got.timeout_ms, want.timeout_ms);
  EXPECT_EQ(got.quarantine_after, want.quarantine_after);

  // open() compacts the file; the rewritten submit record must preserve
  // the job kind and the recompute-only fields.
  {
    JobLedger ledger;
    ASSERT_TRUE(ledger.open(path_, nullptr));
    ledger.close();
  }
  const auto after = JobLedger::replay_file(path_);
  ASSERT_EQ(after.pending.size(), 2u);
  ASSERT_EQ(after.pending[1].kind, JobKind::kRecompute);
  EXPECT_EQ(after.pending[1].recompute.section_batches, "iterations=96");
  EXPECT_TRUE(after.pending[1].recompute.force);
}

TEST_F(LedgerTest, PreRecomputeSubmitRecordReplaysAsCampaign) {
  // A submit payload that stops at the eighth request field is exactly what
  // ledgers written before recompute jobs existed contain; it must replay
  // as a campaign job, not be rejected for missing trailing fields.
  {
    JobLedger ledger;  // writes the preamble
    ASSERT_TRUE(ledger.open(path_, nullptr));
  }
  util::BinaryWriter payload;
  payload.put_u64(9);  // job id
  payload.put_u64(static_cast<std::uint64_t>(JobState::kSubmitted));
  payload.put_string("daxpy");
  payload.put_string("tiny");
  payload.put_u64(1);    // seed
  payload.put_u64(123);  // batch
  payload.put_u64(3);    // workers
  payload.put_u64(17);   // flush_every
  payload.put_u64(999);  // timeout_ms
  payload.put_u64(5);    // quarantine_after
  append_raw(frame(payload.buffer()));

  const auto replay = JobLedger::replay_file(path_);
  EXPECT_EQ(replay.torn_records, 0u);
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].kind, JobKind::kCampaign);
  EXPECT_EQ(replay.pending[0].req.kernel, "daxpy");
  EXPECT_EQ(replay.pending[0].req.batch, 123u);
  EXPECT_EQ(replay.next_job_id, 10u);
}

TEST_F(LedgerTest, InvalidSubmitKindIsDiagnosedNotTrusted) {
  // A trailing kind that is neither absent nor kRecompute is a malformed
  // record: replay must drop it with a diagnostic instead of guessing.
  {
    JobLedger ledger;  // writes the preamble
    ASSERT_TRUE(ledger.open(path_, nullptr));
  }
  util::BinaryWriter payload;
  payload.put_u64(4);
  payload.put_u64(static_cast<std::uint64_t>(JobState::kSubmitted));
  payload.put_string("cg");
  payload.put_string("tiny");
  for (int i = 0; i < 6; ++i) payload.put_u64(1);
  payload.put_u64(99);  // bogus kind
  payload.put_string("");
  payload.put_u64(0);
  append_raw(frame(payload.buffer()));

  const auto replay = JobLedger::replay_file(path_);
  EXPECT_TRUE(replay.pending.empty());
  EXPECT_EQ(replay.torn_records, 1u);
  ASSERT_FALSE(replay.diagnostics.empty());
  EXPECT_NE(replay.diagnostics[0].find("invalid submit kind"),
            std::string::npos);
}

}  // namespace
}  // namespace ftb::service
