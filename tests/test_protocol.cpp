// Protocol payload codecs: every message round-trips, and every decoder
// rejects truncation, trailing garbage, wrong frame types, and
// out-of-range values with a diagnostic.
#include "service/protocol.h"

#include <string>

#include <gtest/gtest.h>

namespace ftb::service {
namespace {

/// Appends then strips bytes to check the decoder's framing discipline:
/// every proper prefix of the payload must be rejected, as must one extra
/// byte, all with non-empty diagnostics.
template <typename Parse>
void expect_framing_discipline(const net::Frame& frame, Parse parse) {
  for (std::size_t len = 0; len < frame.payload.size(); ++len) {
    net::Frame truncated;
    truncated.type = frame.type;
    truncated.payload.assign(frame.payload.begin(),
                             frame.payload.begin() + len);
    std::string error;
    EXPECT_FALSE(parse(truncated, &error).has_value()) << "prefix " << len;
    EXPECT_FALSE(error.empty()) << "prefix " << len;
  }
  net::Frame padded = frame;
  padded.payload.push_back(0);
  std::string error;
  EXPECT_FALSE(parse(padded, &error).has_value());
  EXPECT_FALSE(error.empty());

  net::Frame wrong_type = frame;
  wrong_type.type += 1;
  error.clear();
  EXPECT_FALSE(parse(wrong_type, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Protocol, ErrorRoundTrip) {
  const net::Frame frame = make_error("boom: detail");
  const auto msg = parse_error(frame);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->message, "boom: detail");
  expect_framing_discipline(frame, [](const net::Frame& f, std::string* e) {
    return parse_error(f, e);
  });
}

TEST(Protocol, PingPongHaveEmptyPayloads) {
  EXPECT_TRUE(make_ping().payload.empty());
  EXPECT_TRUE(make_pong().payload.empty());
  EXPECT_TRUE(make_shutdown().payload.empty());
  EXPECT_TRUE(make_shutdown_ok().payload.empty());
  EXPECT_TRUE(make_stats().payload.empty());
  EXPECT_TRUE(make_list_boundaries().payload.empty());
}

TEST(Protocol, PredictFlipRoundTrip) {
  PredictFlipReq req;
  req.key = "cg@tiny@1";
  req.site = 1234567;
  req.bit = 52;
  const net::Frame frame = make_predict_flip(req);
  const auto decoded = parse_predict_flip(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key, req.key);
  EXPECT_EQ(decoded->site, req.site);
  EXPECT_EQ(decoded->bit, req.bit);
  expect_framing_discipline(frame, [](const net::Frame& f, std::string* e) {
    return parse_predict_flip(f, e);
  });
}

TEST(Protocol, PredictFlipRejectsOutOfRangeBit) {
  PredictFlipReq req;
  req.key = "k";
  req.bit = 64;
  std::string error;
  EXPECT_FALSE(parse_predict_flip(make_predict_flip(req), &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;
}

TEST(Protocol, PredictFlipOkRoundTrip) {
  PredictFlipOk ok;
  ok.outcome = 1;
  ok.threshold = 1.5e-7;
  ok.injected_error = 0.25;
  const auto decoded = parse_predict_flip_ok(make_predict_flip_ok(ok));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->outcome, 1u);
  EXPECT_DOUBLE_EQ(decoded->threshold, 1.5e-7);
  EXPECT_DOUBLE_EQ(decoded->injected_error, 0.25);
}

TEST(Protocol, PredictSiteRoundTrip) {
  PredictSiteReq req;
  req.key = "lu@paper@3";
  req.site = 99;
  const auto decoded = parse_predict_site(make_predict_site(req));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key, req.key);
  EXPECT_EQ(decoded->site, req.site);

  PredictSiteOk ok;
  ok.masked = 23;
  ok.sdc = 40;
  ok.crash = 1;
  ok.sdc_ratio = 40.0 / 64.0;
  ok.threshold = 9.3e-10;
  ok.golden_value = -1.0;
  const auto decoded_ok = parse_predict_site_ok(make_predict_site_ok(ok));
  ASSERT_TRUE(decoded_ok.has_value());
  EXPECT_EQ(decoded_ok->masked, 23u);
  EXPECT_EQ(decoded_ok->sdc, 40u);
  EXPECT_EQ(decoded_ok->crash, 1u);
  EXPECT_DOUBLE_EQ(decoded_ok->golden_value, -1.0);
}

TEST(Protocol, PhaseReportRoundTrip) {
  PhaseReportOk ok;
  boundary::PhaseReport row;
  row.name = "iterations";
  row.begin = 193;
  row.end = 873;
  row.mean_predicted_sdc = 0.23;
  row.median_threshold = 5.2e-5;
  row.informed_fraction = 1.0;
  row.mean_true_sdc = 0.25;
  row.mean_detected_coverage = 0.75;
  ok.rows.push_back(row);
  row.name = "(prelude)";
  row.mean_true_sdc.reset();
  row.mean_detected_coverage.reset();
  ok.rows.push_back(row);

  const net::Frame frame = make_phase_report_ok(ok);
  const auto decoded = parse_phase_report_ok(frame);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->rows.size(), 2u);
  EXPECT_EQ(decoded->rows[0].name, "iterations");
  ASSERT_TRUE(decoded->rows[0].mean_true_sdc.has_value());
  EXPECT_DOUBLE_EQ(*decoded->rows[0].mean_true_sdc, 0.25);
  ASSERT_TRUE(decoded->rows[0].mean_detected_coverage.has_value());
  EXPECT_DOUBLE_EQ(*decoded->rows[0].mean_detected_coverage, 0.75);
  EXPECT_FALSE(decoded->rows[1].mean_true_sdc.has_value());
  EXPECT_FALSE(decoded->rows[1].mean_detected_coverage.has_value());
  expect_framing_discipline(frame, [](const net::Frame& f, std::string* e) {
    return parse_phase_report_ok(f, e);
  });
}

TEST(Protocol, BoundaryListRoundTrip) {
  BoundaryListOk ok;
  BoundaryInfo info;
  info.key = "cg@tiny@1";
  info.config_key = "cg:nx=4";
  info.sites = 873;
  info.informed_sites = 856;
  ok.entries.push_back(info);
  const net::Frame frame = make_boundary_list_ok(ok);
  const auto decoded = parse_boundary_list_ok(frame);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->entries.size(), 1u);
  EXPECT_EQ(decoded->entries[0].key, "cg@tiny@1");
  EXPECT_EQ(decoded->entries[0].informed_sites, 856u);
  expect_framing_discipline(frame, [](const net::Frame& f, std::string* e) {
    return parse_boundary_list_ok(f, e);
  });
}

TEST(Protocol, SubmitCampaignRoundTrip) {
  SubmitCampaignReq req;
  req.kernel = "daxpy";
  req.preset = "tiny";
  req.seed = 9;
  req.batch = 500;
  req.workers = 3;
  req.flush_every = 128;
  req.timeout_ms = 1500;
  req.quarantine_after = 2;
  const net::Frame frame = make_submit_campaign(req);
  const auto decoded = parse_submit_campaign(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kernel, "daxpy");
  EXPECT_EQ(decoded->preset, "tiny");
  EXPECT_EQ(decoded->seed, 9u);
  EXPECT_EQ(decoded->batch, 500u);
  EXPECT_EQ(decoded->workers, 3u);
  EXPECT_EQ(decoded->flush_every, 128u);
  EXPECT_EQ(decoded->timeout_ms, 1500u);
  EXPECT_EQ(decoded->quarantine_after, 2u);
  expect_framing_discipline(frame, [](const net::Frame& f, std::string* e) {
    return parse_submit_campaign(f, e);
  });
}

TEST(Protocol, SubmitCampaignRejectsZeroBatch) {
  SubmitCampaignReq req;
  req.kernel = "daxpy";
  req.batch = 0;
  std::string error;
  EXPECT_FALSE(
      parse_submit_campaign(make_submit_campaign(req), &error).has_value());
  EXPECT_NE(error.find("batch"), std::string::npos) << error;
}

TEST(Protocol, CampaignStreamRoundTrip) {
  CampaignAccepted accepted;
  accepted.job = 42;
  accepted.queue_depth = 3;
  const auto decoded_accepted =
      parse_campaign_accepted(make_campaign_accepted(accepted));
  ASSERT_TRUE(decoded_accepted.has_value());
  EXPECT_EQ(decoded_accepted->job, 42u);
  EXPECT_EQ(decoded_accepted->queue_depth, 3u);

  CampaignProgress progress;
  progress.job = 42;
  progress.done = 128;
  progress.total = 400;
  progress.logged = 128;
  progress.masked = 60;
  progress.sdc = 67;
  progress.crash = 1;
  progress.worker_deaths = 2;
  progress.requeued = 5;
  progress.detected = 9;
  const net::Frame pframe = make_campaign_progress(progress);
  const auto decoded_progress = parse_campaign_progress(pframe);
  ASSERT_TRUE(decoded_progress.has_value());
  EXPECT_EQ(decoded_progress->done, 128u);
  EXPECT_EQ(decoded_progress->worker_deaths, 2u);
  EXPECT_EQ(decoded_progress->requeued, 5u);
  EXPECT_EQ(decoded_progress->detected, 9u);
  expect_framing_discipline(pframe, [](const net::Frame& f, std::string* e) {
    return parse_campaign_progress(f, e);
  });

  CampaignDone done;
  done.job = 42;
  done.ok = true;
  done.store_key = "daxpy@tiny@1";
  done.executed = 400;
  done.flushes = 5;
  done.masked = 206;
  done.detected = 17;
  const net::Frame dframe = make_campaign_done(done);
  const auto decoded_done = parse_campaign_done(dframe);
  ASSERT_TRUE(decoded_done.has_value());
  EXPECT_TRUE(decoded_done->ok);
  EXPECT_FALSE(decoded_done->stopped);
  EXPECT_EQ(decoded_done->store_key, "daxpy@tiny@1");
  EXPECT_EQ(decoded_done->executed, 400u);
  EXPECT_EQ(decoded_done->detected, 17u);
  expect_framing_discipline(dframe, [](const net::Frame& f, std::string* e) {
    return parse_campaign_done(f, e);
  });
}

TEST(Protocol, SubmitRecomputeRoundTrip) {
  SubmitRecomputeReq req;
  req.kernel = "cg";
  req.preset = "tiny";
  req.seed = 3;
  req.section_batch = 64;
  req.section_batches = "iterations=96,setup=32";
  req.force = true;
  req.workers = 4;
  req.flush_every = 128;
  req.timeout_ms = 1500;
  req.quarantine_after = 2;
  const net::Frame frame = make_submit_recompute(req);
  const auto decoded = parse_submit_recompute(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kernel, "cg");
  EXPECT_EQ(decoded->preset, "tiny");
  EXPECT_EQ(decoded->seed, 3u);
  EXPECT_EQ(decoded->section_batch, 64u);
  EXPECT_EQ(decoded->section_batches, "iterations=96,setup=32");
  EXPECT_TRUE(decoded->force);
  EXPECT_EQ(decoded->workers, 4u);
  EXPECT_EQ(decoded->flush_every, 128u);
  EXPECT_EQ(decoded->timeout_ms, 1500u);
  EXPECT_EQ(decoded->quarantine_after, 2u);
  expect_framing_discipline(frame, [](const net::Frame& f, std::string* e) {
    return parse_submit_recompute(f, e);
  });
}

TEST(Protocol, SubmitRecomputeRejectsZeroSectionBatch) {
  SubmitRecomputeReq req;
  req.kernel = "cg";
  req.section_batch = 0;
  std::string error;
  EXPECT_FALSE(
      parse_submit_recompute(make_submit_recompute(req), &error).has_value());
  EXPECT_NE(error.find("batch"), std::string::npos) << error;
}

TEST(Protocol, RecomputeDoneRoundTrip) {
  RecomputeDone done;
  done.job = 7;
  done.ok = true;
  done.store_key = "cg@tiny@1";
  done.executed = 96;
  done.sections = 3;
  done.dirty = {"iterations"};
  done.reused = {"zero-init", "setup"};
  const net::Frame frame = make_recompute_done(done);
  const auto decoded = parse_recompute_done(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->ok);
  EXPECT_FALSE(decoded->stopped);
  EXPECT_EQ(decoded->store_key, "cg@tiny@1");
  EXPECT_EQ(decoded->executed, 96u);
  EXPECT_EQ(decoded->sections, 3u);
  EXPECT_EQ(decoded->dirty, std::vector<std::string>{"iterations"});
  EXPECT_EQ(decoded->reused, (std::vector<std::string>{"zero-init", "setup"}));
  expect_framing_discipline(frame, [](const net::Frame& f, std::string* e) {
    return parse_recompute_done(f, e);
  });
}

TEST(Protocol, RecomputeDoneRejectsForgedSectionCount) {
  // A forged dirty-section count larger than the remaining payload must be
  // rejected before any allocation, same as the worker-frame count guards.
  RecomputeDone done;
  done.job = 1;
  done.dirty = {"a"};
  net::Frame frame = make_recompute_done(done);
  // Every field ahead of the dirty count is a u64 (bools and string length
  // prefixes included): job, ok, stopped, empty error, empty store_key,
  // executed, sections.
  const std::size_t count_offset = 7 * 8;
  ASSERT_GT(frame.payload.size(), count_offset + 8);
  frame.payload[count_offset] = 0xff;  // count becomes absurd
  std::string error;
  EXPECT_FALSE(parse_recompute_done(frame, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Protocol, TypeNamesAreStable) {
  EXPECT_STREQ(to_string(MsgType::kPing), "Ping");
  EXPECT_STREQ(to_string(MsgType::kSubmitCampaign), "SubmitCampaign");
  EXPECT_STREQ(to_string(MsgType::kShutdownOk), "ShutdownOk");
  EXPECT_STREQ(to_string(MsgType::kSubmitRecompute), "SubmitRecompute");
  EXPECT_STREQ(to_string(MsgType::kRecomputeDone), "RecomputeDone");
}

}  // namespace
}  // namespace ftb::service
