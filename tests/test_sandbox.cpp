// Tests for the process-isolation layer.  The hazard kernels are the only
// programs whose flips genuinely segfault, trap, or spin, so they anchor the
// signal-classification and watchdog assertions.  Signal identity is
// asserted via is_isolation_reason()/isolation_crashes() rather than exact
// signals: under ASan/UBSan a child's segfault becomes a sanitizer report
// and a nonzero exit (kAbnormalExit), which is still an isolation-layer
// crash.
#include "fi/sandbox.h"

#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/sample_space.h"
#include "campaign/sampler.h"
#include "kernels/hazard.h"
#include "kernels/registry.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ftb::fi {
namespace {

TEST(Sandbox, SupportedOnThisPlatform) {
  // The test suite only runs on POSIX platforms (fork is available).
  EXPECT_TRUE(sandbox_supported());
}

TEST(Sandbox, MatchesInProcessOnWellBehavedKernel) {
  const ProgramPtr program = kernels::make_program("daxpy", kernels::Preset::kTiny);
  const GoldenRun golden = run_golden(*program);
  util::Rng rng(21);
  const std::vector<campaign::ExperimentId> ids =
      campaign::sample_uniform(rng, golden.sample_space_size(), 60);

  util::ThreadPool pool(2);
  const std::vector<campaign::ExperimentRecord> direct =
      campaign::run_experiments(*program, golden, ids, pool);
  SandboxStats stats;
  const std::vector<campaign::ExperimentRecord> sandboxed =
      campaign::run_experiments_sandboxed(*program, golden, ids, {}, &stats);

  ASSERT_EQ(sandboxed.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(sandboxed[i].id, direct[i].id);
    EXPECT_EQ(sandboxed[i].result.outcome, direct[i].result.outcome) << i;
    EXPECT_EQ(sandboxed[i].result.crash_reason, direct[i].result.crash_reason)
        << i;
    EXPECT_DOUBLE_EQ(sandboxed[i].result.injected_error,
                     direct[i].result.injected_error)
        << i;
    EXPECT_DOUBLE_EQ(sandboxed[i].result.output_error,
                     direct[i].result.output_error)
        << i;
  }
  // A well-behaved batch needs exactly one child and no interventions.
  EXPECT_EQ(stats.children_spawned, 1u);
  EXPECT_EQ(stats.signal_deaths, 0u);
  EXPECT_EQ(stats.watchdog_kills, 0u);
  EXPECT_EQ(stats.fallback_experiments, 0u);
}

TEST(Sandbox, ClassifiesSignalDeathsAndPreservesNeighbours) {
  const kernels::HazardProgram program{kernels::HazardConfig{}};
  const GoldenRun golden = run_golden(program);

  // Sanity-check the documented control values before weaponising them.
  ASSERT_DOUBLE_EQ(golden.trace[program.offset_site(1)], 5.0);
  ASSERT_DOUBLE_EQ(golden.trace[program.divisor_site(0)], 8.0);

  const std::vector<Injection> injections = {
      Injection::bit_flip(0, 1),                       // benign mantissa flip
      Injection::bit_flip(program.offset_site(1), 61), // ~2^514 offset: SIGSEGV
      Injection::bit_flip(0, 2),                       // benign
      Injection::bit_flip(program.divisor_site(0), 62),// denormal -> /0: SIGFPE
      Injection::bit_flip(0, 3),                       // benign
  };
  SandboxStats stats;
  const std::vector<ExperimentResult> results =
      run_injected_sandboxed(program, golden, injections, {}, &stats);

  ASSERT_EQ(results.size(), injections.size());
  EXPECT_TRUE(is_isolation_reason(results[1].crash_reason))
      << to_string(results[1].crash_reason);
  EXPECT_EQ(results[1].outcome, Outcome::kCrash);
  EXPECT_TRUE(is_isolation_reason(results[3].crash_reason))
      << to_string(results[3].crash_reason);
  EXPECT_EQ(results[3].outcome, Outcome::kCrash);
  // The benign experiments around the lethal ones were completed normally
  // (each lethal flip kills one child; the batch resumes in a fresh one).
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{4}}) {
    EXPECT_NE(results[i].outcome, Outcome::kHang) << i;
    EXPECT_FALSE(is_isolation_reason(results[i].crash_reason)) << i;
  }
  EXPECT_EQ(stats.signal_deaths + stats.abnormal_exits, 2u);
  EXPECT_GE(stats.children_spawned, 3u);
  EXPECT_EQ(stats.fallback_experiments, 0u);
}

TEST(Sandbox, WatchdogConvertsSpinIntoHang) {
  const kernels::HazardSpinProgram program{kernels::HazardSpinConfig{}};
  const GoldenRun golden = run_golden(program);
  ASSERT_DOUBLE_EQ(golden.trace[kernels::HazardSpinProgram::kDecaySite], 0.5);

  SandboxOptions options;
  options.timeout_ms = 250;
  const std::vector<Injection> injections = {
      // Exponent LSB of 0.5 -> exactly 1.0: the residual never shrinks.
      Injection::bit_flip(kernels::HazardSpinProgram::kDecaySite, 52),
      Injection::bit_flip(0, 0),  // benign; proves the batch resumes
  };
  SandboxStats stats;
  const std::vector<ExperimentResult> results =
      run_injected_sandboxed(program, golden, injections, options, &stats);

  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].outcome, Outcome::kHang);
  EXPECT_EQ(results[0].crash_reason, CrashReason::kNone);
  EXPECT_NE(results[1].outcome, Outcome::kHang);
  EXPECT_FALSE(is_isolation_reason(results[1].crash_reason));
  EXPECT_EQ(stats.watchdog_kills, 1u);
}

TEST(Sandbox, HazardCampaignYieldsSignalCrashesAndHangs) {
  // The ISSUE acceptance scenario: a campaign over a hazard kernel, run
  // under the sandbox, completes with nonzero Crash-by-signal and Hang
  // tallies -- and every other experiment still gets a normal outcome.
  const kernels::HazardProgram program{kernels::HazardConfig{}};
  const GoldenRun golden = run_golden(program);
  ASSERT_DOUBLE_EQ(golden.trace[program.trip_site(0)], 16.0);

  const auto id = [](std::uint64_t site, int bit) {
    return site * static_cast<std::uint64_t>(kBitsPerValue) +
           static_cast<std::uint64_t>(bit);
  };
  const std::vector<campaign::ExperimentId> ids = {
      id(0, 1),                           // benign
      id(program.offset_site(1), 61),     // SIGSEGV
      id(1, 2),                           // benign
      id(program.divisor_site(0), 62),    // SIGFPE
      id(program.trip_site(0), 61),       // ~9e18 loop trips: hang
      id(2, 3),                           // benign
  };
  fi::SandboxOptions options;
  options.timeout_ms = 250;
  fi::SandboxStats stats;
  const std::vector<campaign::ExperimentRecord> records =
      campaign::run_experiments_sandboxed(program, golden, ids, options,
                                          &stats);

  const campaign::OutcomeCounts counts = campaign::count_outcomes(records);
  EXPECT_EQ(counts.total(), ids.size());
  EXPECT_GE(counts.crash, 2u);
  EXPECT_GE(counts.hang, 1u);
  const campaign::CrashReasonCounts reasons =
      campaign::count_crash_reasons(records);
  EXPECT_GE(reasons.isolation_crashes(), 2u);
  EXPECT_FALSE(campaign::describe_crash_reasons(reasons).empty());
  EXPECT_EQ(stats.watchdog_kills, 1u);
}

TEST(Sandbox, EmptyBatch) {
  const ProgramPtr program = kernels::make_program("daxpy", kernels::Preset::kTiny);
  const GoldenRun golden = run_golden(*program);
  const std::vector<ExperimentResult> results =
      run_injected_sandboxed(*program, golden, {});
  EXPECT_TRUE(results.empty());
}

}  // namespace
}  // namespace ftb::fi
