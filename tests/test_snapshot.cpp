// Tests for the snapshot fork-server (fi/snapshot.h).
//
// Three concerns, mirroring the layer's promises:
//   * the control-channel codec rejects -- with a diagnostic, never a crash
//     -- every 1-byte corruption and every truncation of both frame types
//     (the net/frame.h fuzz discipline applied to the snapshot plane);
//   * served experiments are bit-identical to run_injected() on well-behaved
//     kernels, survive runner death via rebuild, degrade to the in-process
//     fallback when the rebuild budget is spent, and classify hostile flips
//     (signals, spins) through the same taxonomy as the sandbox;
//   * campaigns run through the worker pool / checkpoint layer with
//     use_snapshots leave byte-identical journals to the classic path,
//     including across an interrupt-and-resume cycle.
#include "fi/snapshot.h"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/checkpoint.h"
#include "campaign/sample_space.h"
#include "campaign/sampler.h"
#include "campaign/supervisor.h"
#include "fi/fpbits.h"
#include "kernels/cg.h"
#include "kernels/hazard.h"
#include "kernels/registry.h"
#include "util/cache.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ftb::fi {
namespace {

SnapshotCommand sample_command() {
  SnapshotCommand command;
  command.seq = 0x1122334455667788ull;
  command.injection = Injection::mem_xor(3, 17, 0x8000000000000001ull);
  command.injection.bit = 9;
  command.injection.operand = -0.751;
  return command;
}

SnapshotResponse sample_response() {
  SnapshotResponse response;
  response.type = SnapshotResponse::Type::kResult;
  response.seq = 0x99aabbccddeeff01ull;
  response.site = 12345;
  response.result.outcome = Outcome::kSdc;
  response.result.crash_reason = CrashReason::kNone;
  response.result.injected_error = 1.5e-3;
  response.result.output_error = 2.25e-6;
  response.result.crash_site = 777;
  response.result.detector_fired = true;
  return response;
}

TEST(SnapshotCodec, CommandRoundTrip) {
  const SnapshotCommand in = sample_command();
  std::uint8_t frame[kSnapshotCommandBytes];
  encode_snapshot_command(in, frame);

  SnapshotCommand out;
  std::string diagnostic;
  ASSERT_TRUE(decode_snapshot_command(frame, &out, &diagnostic)) << diagnostic;
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.injection.kind, in.injection.kind);
  EXPECT_EQ(out.injection.target, in.injection.target);
  EXPECT_EQ(out.injection.site, in.injection.site);
  EXPECT_EQ(out.injection.bit, in.injection.bit);
  EXPECT_EQ(out.injection.touch_point, in.injection.touch_point);
  EXPECT_EQ(to_bits(out.injection.operand), to_bits(in.injection.operand));
  EXPECT_EQ(out.injection.mask, in.injection.mask);
}

TEST(SnapshotCodec, ResponseRoundTrip) {
  const SnapshotResponse in = sample_response();
  std::uint8_t frame[kSnapshotResponseBytes];
  encode_snapshot_response(in, frame);

  SnapshotResponse out;
  std::string diagnostic;
  ASSERT_TRUE(decode_snapshot_response(frame, &out, &diagnostic)) << diagnostic;
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.site, in.site);
  EXPECT_EQ(out.result.outcome, in.result.outcome);
  EXPECT_EQ(out.result.crash_reason, in.result.crash_reason);
  EXPECT_EQ(to_bits(out.result.injected_error),
            to_bits(in.result.injected_error));
  EXPECT_EQ(to_bits(out.result.output_error), to_bits(in.result.output_error));
  EXPECT_EQ(out.result.crash_site, in.result.crash_site);
  EXPECT_EQ(out.result.detector_fired, in.result.detector_fired);
}

TEST(SnapshotCodec, CommandRejectsEveryOneByteCorruption) {
  std::uint8_t frame[kSnapshotCommandBytes];
  encode_snapshot_command(sample_command(), frame);

  for (std::size_t byte = 0; byte < kSnapshotCommandBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::uint8_t corrupt[kSnapshotCommandBytes];
      std::memcpy(corrupt, frame, sizeof(frame));
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);
      SnapshotCommand out;
      std::string diagnostic;
      EXPECT_FALSE(decode_snapshot_command(corrupt, &out, &diagnostic))
          << "byte " << byte << " bit " << bit;
      EXPECT_FALSE(diagnostic.empty()) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(SnapshotCodec, ResponseRejectsEveryOneByteCorruption) {
  std::uint8_t frame[kSnapshotResponseBytes];
  encode_snapshot_response(sample_response(), frame);

  for (std::size_t byte = 0; byte < kSnapshotResponseBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::uint8_t corrupt[kSnapshotResponseBytes];
      std::memcpy(corrupt, frame, sizeof(frame));
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);
      SnapshotResponse out;
      std::string diagnostic;
      EXPECT_FALSE(decode_snapshot_response(corrupt, &out, &diagnostic))
          << "byte " << byte << " bit " << bit;
      EXPECT_FALSE(diagnostic.empty()) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(SnapshotCodec, RejectsEveryTruncationAndOversize) {
  std::uint8_t command[kSnapshotCommandBytes];
  encode_snapshot_command(sample_command(), command);
  std::uint8_t response[kSnapshotResponseBytes];
  encode_snapshot_response(sample_response(), response);

  for (std::size_t n = 0; n < kSnapshotCommandBytes; ++n) {
    SnapshotCommand out;
    std::string diagnostic;
    EXPECT_FALSE(decode_snapshot_command({command, n}, &out, &diagnostic)) << n;
    EXPECT_FALSE(diagnostic.empty()) << n;
  }
  for (std::size_t n = 0; n < kSnapshotResponseBytes; ++n) {
    SnapshotResponse out;
    std::string diagnostic;
    EXPECT_FALSE(decode_snapshot_response({response, n}, &out, &diagnostic))
        << n;
    EXPECT_FALSE(diagnostic.empty()) << n;
  }
  // Oversize frames are rejected too (a frame must be exactly sized).
  std::vector<std::uint8_t> big(command, command + kSnapshotCommandBytes);
  big.push_back(0);
  SnapshotCommand out_cmd;
  EXPECT_FALSE(decode_snapshot_command(big, &out_cmd));
  std::vector<std::uint8_t> big_resp(response,
                                     response + kSnapshotResponseBytes);
  big_resp.push_back(0);
  SnapshotResponse out_resp;
  EXPECT_FALSE(decode_snapshot_response(big_resp, &out_resp));
}

TEST(SnapshotCodec, RejectsGarbageWithoutCrashing) {
  util::Rng rng(7);
  for (int i = 0; i < 512; ++i) {
    std::uint8_t junk[kSnapshotResponseBytes];
    for (std::uint8_t& b : junk) {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
    SnapshotCommand command;
    SnapshotResponse response;
    EXPECT_FALSE(
        decode_snapshot_command({junk, kSnapshotCommandBytes}, &command));
    EXPECT_FALSE(
        decode_snapshot_response({junk, kSnapshotResponseBytes}, &response));
  }
}

TEST(SnapshotCodec, RejectsBadEnumsAndReservedBytesUnderValidCrc) {
  // Corruptions that keep the CRC valid (re-encoded after the tweak) must
  // still be rejected by the field validators.
  const auto reject_command = [](void (*tweak)(std::uint8_t*)) {
    std::uint8_t frame[kSnapshotCommandBytes];
    encode_snapshot_command(sample_command(), frame);
    tweak(frame);
    // Recompute the CRC so only the semantic check can reject.
    const std::uint32_t crc = util::crc32(frame, 48);
    frame[48] = static_cast<std::uint8_t>(crc);
    frame[49] = static_cast<std::uint8_t>(crc >> 8);
    frame[50] = static_cast<std::uint8_t>(crc >> 16);
    frame[51] = static_cast<std::uint8_t>(crc >> 24);
    SnapshotCommand out;
    std::string diagnostic;
    EXPECT_FALSE(decode_snapshot_command(frame, &out, &diagnostic));
    EXPECT_FALSE(diagnostic.empty());
  };
  reject_command([](std::uint8_t* f) { f[4] = 99; });   // version
  reject_command([](std::uint8_t* f) { f[5] = 200; });  // injection kind
  reject_command([](std::uint8_t* f) { f[6] = 200; });  // injection target
  reject_command([](std::uint8_t* f) { f[7] = 1; });    // reserved byte

  const auto reject_response = [](void (*tweak)(std::uint8_t*)) {
    std::uint8_t frame[kSnapshotResponseBytes];
    encode_snapshot_response(sample_response(), frame);
    tweak(frame);
    const std::uint32_t crc = util::crc32(frame, 52);
    frame[52] = static_cast<std::uint8_t>(crc);
    frame[53] = static_cast<std::uint8_t>(crc >> 8);
    frame[54] = static_cast<std::uint8_t>(crc >> 16);
    frame[55] = static_cast<std::uint8_t>(crc >> 24);
    SnapshotResponse out;
    std::string diagnostic;
    EXPECT_FALSE(decode_snapshot_response(frame, &out, &diagnostic));
    EXPECT_FALSE(diagnostic.empty());
  };
  reject_response([](std::uint8_t* f) { f[5] = 0; });    // frame type low
  reject_response([](std::uint8_t* f) { f[5] = 9; });    // frame type high
  reject_response([](std::uint8_t* f) { f[6] = 200; });  // outcome
  reject_response([](std::uint8_t* f) { f[7] = 200; });  // crash reason
  reject_response([](std::uint8_t* f) { f[24] = 2; });   // detector flag
  reject_response([](std::uint8_t* f) { f[26] = 1; });   // reserved byte
}

// ---------------------------------------------------------------------------
// Server behaviour
// ---------------------------------------------------------------------------

// SIGKILLing the runner only *queues* its death; on a loaded single-CPU
// host the zombie transition (and the PR_SET_PDEATHSIG cascade into the
// holders) lands whenever the scheduler gets around to it.  Wait for the
// tree to be genuinely dead before asserting on the recovery behaviour.
void wait_for_runner_death(std::int64_t runner) {
  for (int i = 0; i < 200; ++i) {
    // Signal 0 probes existence; a zombie still "exists", so give the
    // PDEATHSIG chain a beat even after the probe starts failing.
    if (::kill(static_cast<pid_t>(runner), 0) != 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

void expect_same_result(const ExperimentResult& snap,
                        const ExperimentResult& classic, std::uint64_t tag) {
  EXPECT_EQ(snap.outcome, classic.outcome) << tag;
  EXPECT_EQ(snap.crash_reason, classic.crash_reason) << tag;
  EXPECT_EQ(to_bits(snap.injected_error), to_bits(classic.injected_error))
      << tag;
  EXPECT_EQ(to_bits(snap.output_error), to_bits(classic.output_error)) << tag;
  EXPECT_EQ(snap.crash_site, classic.crash_site) << tag;
  EXPECT_EQ(snap.detector_fired, classic.detector_fired) << tag;
}

// ---------------------------------------------------------------------------
// Checkpoint planning: density-aware slot placement (bench/micro_supervisor
// measures the speedup; these tests pin the placement contract).
// ---------------------------------------------------------------------------

TEST(PlanCheckpoints, UniformGridWithoutHints) {
  const ProgramPtr program = kernels::make_program("cg", kernels::Preset::kTiny);
  const GoldenRun golden = run_golden(*program);
  SnapshotOptions options;
  options.interval = 100;
  options.max_checkpoints = 64;
  const std::vector<std::uint64_t> plan = plan_checkpoints(golden, options);

  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.front(), 0u);  // the pre-run checkpoint always exists
  EXPECT_TRUE(std::is_sorted(plan.begin(), plan.end()));
  // Every phase edge and every interval multiple below the trace end shows
  // up (the plan is under the cap, so nothing is thinned).
  for (const PhaseMark& mark : golden.phases) {
    EXPECT_NE(std::find(plan.begin(), plan.end(), mark.begin), plan.end())
        << "phase edge " << mark.begin;
  }
  for (std::uint64_t s = 100; s < golden.trace.size(); s += 100) {
    EXPECT_NE(std::find(plan.begin(), plan.end(), s), plan.end())
        << "grid site " << s;
  }
}

TEST(PlanCheckpoints, DensityHintsConcentrateSlotsWhereSitesAre) {
  const ProgramPtr program = kernels::make_program("cg", kernels::Preset::kTiny);
  const GoldenRun golden = run_golden(*program);
  const std::uint64_t total = golden.trace.size();

  // All pending experiments live in the last quarter of the trace (the
  // late-site regime snapshots exist for).
  SnapshotOptions options;
  options.max_checkpoints = 12;
  for (std::uint64_t s = total - total / 4; s < total; s += 3) {
    options.site_hints.push_back(s);
  }
  const std::vector<std::uint64_t> plan = plan_checkpoints(golden, options);

  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.front(), 0u);
  EXPECT_LE(plan.size(), options.max_checkpoints);
  EXPECT_TRUE(std::is_sorted(plan.begin(), plan.end()));
  // The non-mandatory slots all land inside the hinted region: nothing from
  // the uniform grid in the dead first three quarters.
  std::size_t inside = 0;
  for (std::uint64_t site : plan) {
    if (site >= total - total / 4) ++inside;
  }
  EXPECT_GE(inside, plan.size() - 1 - golden.phases.size());
  // Hint quantiles include the extremes, so the budget spans the region.
  EXPECT_EQ(plan.back(), options.site_hints.back());
}

TEST(PlanCheckpoints, OutOfRangeHintsFallBackToUniformGrid) {
  const ProgramPtr program = kernels::make_program("cg", kernels::Preset::kTiny);
  const GoldenRun golden = run_golden(*program);
  SnapshotOptions options;
  options.interval = 200;
  // Every hint is past the end of the trace: filtered out, so the plan
  // must match the no-hints uniform grid exactly.
  options.site_hints = {golden.trace.size(), golden.trace.size() + 7};
  const std::vector<std::uint64_t> hinted = plan_checkpoints(golden, options);
  options.site_hints.clear();
  EXPECT_EQ(hinted, plan_checkpoints(golden, options));
}

TEST(PlanCheckpoints, CapThinsButKeepsInstructionZero) {
  const ProgramPtr program = kernels::make_program("cg", kernels::Preset::kTiny);
  const GoldenRun golden = run_golden(*program);
  SnapshotOptions options;
  options.interval = 8;  // far more grid sites than the cap allows
  options.max_checkpoints = 5;
  const std::vector<std::uint64_t> plan = plan_checkpoints(golden, options);
  EXPECT_LE(plan.size(), 5u);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.front(), 0u);
  EXPECT_TRUE(std::is_sorted(plan.begin(), plan.end()));
}

TEST(SnapshotServer, SupportedOnThisPlatform) {
  EXPECT_TRUE(snapshot_supported());
}

TEST(SnapshotServer, SafeGatingRefusesThreadedConfigs) {
  const ProgramPtr serial =
      kernels::make_program("cg", kernels::Preset::kTiny);
  EXPECT_TRUE(snapshot_safe(*serial));

  kernels::CgConfig threaded_config;
  threaded_config.threads = 2;
  const kernels::CgProgram threaded(threaded_config);
  EXPECT_FALSE(snapshot_safe(threaded));

  // A server over an unsafe program comes up unhealthy and falls back
  // in-process -- with results identical to run_injected().
  const GoldenRun golden = run_golden(threaded);
  SnapshotServer server(threaded, golden);
  EXPECT_FALSE(server.healthy());
  EXPECT_EQ(server.checkpoint_count(), 0u);
  const Injection injection = Injection::bit_flip(3, 11);
  expect_same_result(server.run(injection),
                     run_injected(threaded, golden, injection), 0);
  EXPECT_GE(server.stats().fallback_experiments, 1u);
  EXPECT_EQ(server.stats().served, 0u);
}

TEST(SnapshotServer, ServedExperimentsMatchInProcessBitExactly) {
  const ProgramPtr program =
      kernels::make_program("cg", kernels::Preset::kTiny);
  const GoldenRun golden = run_golden(*program);
  ASSERT_FALSE(golden.touch_sizes.empty());

  SnapshotOptions options;
  options.interval = 200;  // several mid-run checkpoints on the tiny trace
  SnapshotServer server(*program, golden, options);
  ASSERT_TRUE(server.healthy());
  EXPECT_GE(server.checkpoint_count(), 3u);

  util::Rng rng(41);
  std::vector<Injection> injections;
  for (const campaign::ExperimentId id :
       campaign::sample_uniform(rng, golden.sample_space_size(), 48)) {
    injections.push_back(campaign::injection_of(id));
  }
  // Memory-resident faults replay from the pre-run checkpoint.
  injections.push_back(Injection::mem_xor(0, 0, std::uint64_t{1} << 40));
  injections.push_back(Injection::mem_xor(
      static_cast<std::uint32_t>(golden.touch_sizes.size() - 1), 0,
      std::uint64_t{3} << 20));

  for (std::size_t i = 0; i < injections.size(); ++i) {
    expect_same_result(server.run(injections[i]),
                       run_injected(*program, golden, injections[i]), i);
  }
  const SnapshotStats& stats = server.stats();
  EXPECT_EQ(stats.served, injections.size());
  EXPECT_EQ(stats.fallback_experiments, 0u);
  EXPECT_EQ(stats.rebuilds, 0u);
  // Late-site experiments skipped a real prefix: that is the entire point.
  EXPECT_GT(stats.skipped_prefix, 0u);
}

TEST(SnapshotServer, NearestCheckpointIsMonotoneAndBelowSite) {
  const ProgramPtr program =
      kernels::make_program("cg", kernels::Preset::kTiny);
  const GoldenRun golden = run_golden(*program);
  SnapshotOptions options;
  options.interval = 128;
  SnapshotServer server(*program, golden, options);
  ASSERT_TRUE(server.healthy());

  EXPECT_EQ(server.nearest_checkpoint(0), 0u);
  std::uint64_t previous = 0;
  for (std::uint64_t site = 0; site < golden.trace.size();
       site += golden.trace.size() / 17 + 1) {
    const std::uint64_t nearest = server.nearest_checkpoint(site);
    EXPECT_LE(nearest, site);
    EXPECT_GE(nearest, previous);
    previous = nearest;
  }
}

TEST(SnapshotServer, RebuildsAfterRunnerDeath) {
  const ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const GoldenRun golden = run_golden(*program);
  SnapshotServer server(*program, golden);
  ASSERT_TRUE(server.healthy());

  const std::int64_t runner = server.runner_pid();
  ASSERT_GT(runner, 0);
  ASSERT_EQ(::kill(static_cast<pid_t>(runner), SIGKILL), 0);
  wait_for_runner_death(runner);

  // The next experiment notices the damage, rebuilds the tree, and still
  // returns the bit-exact classic result.
  const Injection injection = Injection::bit_flip(5, 13);
  expect_same_result(server.run(injection),
                     run_injected(*program, golden, injection), 0);
  EXPECT_TRUE(server.healthy());
  EXPECT_GE(server.stats().rebuilds, 1u);
  EXPECT_NE(server.runner_pid(), runner);
}

TEST(SnapshotServer, DegradesToFallbackWhenRebuildBudgetSpent) {
  const ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const GoldenRun golden = run_golden(*program);
  SnapshotOptions options;
  options.max_rebuilds = 0;
  SnapshotServer server(*program, golden, options);
  ASSERT_TRUE(server.healthy());

  const std::int64_t runner = server.runner_pid();
  ASSERT_GT(runner, 0);
  ASSERT_EQ(::kill(static_cast<pid_t>(runner), SIGKILL), 0);
  wait_for_runner_death(runner);

  const Injection injection = Injection::bit_flip(2, 7);
  expect_same_result(server.run(injection),
                     run_injected(*program, golden, injection), 0);
  EXPECT_FALSE(server.healthy());
  EXPECT_GE(server.stats().fallback_experiments, 1u);
  EXPECT_EQ(server.stats().rebuilds, 0u);
}

TEST(SnapshotServer, ClassifiesLethalFlipsLikeTheSandbox) {
  const kernels::HazardProgram program{kernels::HazardConfig{}};
  const GoldenRun golden = run_golden(program);
  ASSERT_TRUE(snapshot_safe(program));
  SnapshotServer server(program, golden);
  ASSERT_TRUE(server.healthy());

  // ~2^514 array offset: the experiment child segfaults (or, under a
  // sanitizer, aborts) and the holder classifies the death.
  const ExperimentResult crash =
      server.run(Injection::bit_flip(program.offset_site(1), 61));
  EXPECT_EQ(crash.outcome, Outcome::kCrash);
  EXPECT_TRUE(is_isolation_reason(crash.crash_reason))
      << to_string(crash.crash_reason);

  // The tree survives hostile children: the next benign experiment is
  // served normally, no rebuild needed.
  const Injection benign = Injection::bit_flip(0, 1);
  expect_same_result(server.run(benign), run_injected(program, golden, benign),
                     1);
  EXPECT_EQ(server.stats().rebuilds, 0u);
}

TEST(SnapshotServer, WatchdogConvertsSpinIntoHang) {
  const kernels::HazardSpinProgram program{kernels::HazardSpinConfig{}};
  const GoldenRun golden = run_golden(program);
  ASSERT_TRUE(snapshot_safe(program));

  SnapshotOptions options;
  options.timeout_ms = 250;
  SnapshotServer server(program, golden, options);
  ASSERT_TRUE(server.healthy());

  // Exponent LSB of the 0.5 decay factor -> 1.0: the residual never
  // shrinks and the holder's per-experiment watchdog must fire.
  const ExperimentResult hang = server.run(
      Injection::bit_flip(kernels::HazardSpinProgram::kDecaySite, 52));
  EXPECT_EQ(hang.outcome, Outcome::kHang);
  EXPECT_EQ(hang.crash_reason, CrashReason::kNone);

  const Injection benign = Injection::bit_flip(0, 0);
  expect_same_result(server.run(benign), run_injected(program, golden, benign),
                     1);
}

// ---------------------------------------------------------------------------
// Campaign integration: worker pool and checkpointed journals
// ---------------------------------------------------------------------------

std::string temp_journal(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("ftb_snapshot_") + tag + ".clog"))
      .string();
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(SnapshotCampaign, PoolModeMatchesClassicRecords) {
  const ProgramPtr program =
      kernels::make_program("cg", kernels::Preset::kTiny);
  const GoldenRun golden = run_golden(*program);
  util::Rng rng(51);
  const std::vector<campaign::ExperimentId> ids =
      campaign::sample_uniform(rng, golden.sample_space_size(), 64);

  campaign::SupervisorOptions classic_options;
  classic_options.pool.workers = 2;
  campaign::CampaignSupervisor classic(*program, golden, classic_options);
  const std::vector<campaign::ExperimentRecord> classic_records =
      classic.run(ids);

  campaign::SupervisorOptions snap_options;
  snap_options.pool.workers = 2;
  snap_options.pool.use_snapshots = true;
  snap_options.pool.snapshot.interval = 256;
  campaign::CampaignSupervisor snapshotted(*program, golden, snap_options);
  const std::vector<campaign::ExperimentRecord> snap_records =
      snapshotted.run(ids);

  ASSERT_EQ(snap_records.size(), classic_records.size());
  for (std::size_t i = 0; i < classic_records.size(); ++i) {
    EXPECT_EQ(snap_records[i].id, classic_records[i].id);
    expect_same_result(snap_records[i].result, classic_records[i].result,
                       classic_records[i].id);
  }
}

TEST(SnapshotCampaign, JournalBytesMatchClassicAcrossKillAndResume) {
  // The ISSUE acceptance scenario: snapshot-mode journals must be
  // byte-identical to classic ones, including after an interrupted run is
  // resumed (the journal a kill -9 leaves behind is exactly the partial,
  // flushed-every-chunk journal this builds by running half the ids).
  const ProgramPtr program =
      kernels::make_program("cg", kernels::Preset::kTiny);
  const GoldenRun golden = run_golden(*program);
  util::Rng rng(52);
  const std::vector<campaign::ExperimentId> ids =
      campaign::sample_uniform(rng, golden.sample_space_size(), 80);

  campaign::CheckpointOptions classic;
  classic.path = temp_journal("classic");
  classic.flush_every = 32;
  classic.use_supervisor = true;
  classic.supervisor.pool.workers = 2;
  run_campaign_checkpointed(*program, golden, ids, classic);

  campaign::CheckpointOptions snap;
  snap.path = temp_journal("snap");
  snap.flush_every = 32;
  snap.use_supervisor = true;
  snap.supervisor.pool.workers = 2;
  snap.supervisor.pool.use_snapshots = true;
  snap.supervisor.pool.snapshot.interval = 256;

  // Interrupted first attempt: only half the ids, journal flushed per chunk.
  const std::span<const campaign::ExperimentId> first_half(ids.data(), 40);
  run_campaign_checkpointed(*program, golden, first_half, snap);
  // Resume with the full set on a fresh supervisor (fresh snapshot trees).
  const campaign::CheckpointRunResult resumed =
      run_campaign_checkpointed(*program, golden, ids, snap);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_GE(resumed.skipped, 40u);

  EXPECT_EQ(file_bytes(snap.path), file_bytes(classic.path));
  std::filesystem::remove(classic.path);
  std::filesystem::remove(snap.path);
}

}  // namespace
}  // namespace ftb::fi
