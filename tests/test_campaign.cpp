#include "campaign/campaign.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/blas1.h"

namespace ftb::campaign {
namespace {

struct Fixture {
  Fixture() : program(make_config()), golden(fi::run_golden(program)) {}
  static kernels::DaxpyConfig make_config() {
    kernels::DaxpyConfig config;
    config.n = 8;
    return config;
  }
  kernels::DaxpyProgram program;
  fi::GoldenRun golden;
};

TEST(Campaign, RecordsComeBackInInputOrder) {
  Fixture f;
  util::ThreadPool pool(4);
  const std::vector<ExperimentId> ids = {encode(0, 0), encode(5, 10),
                                         encode(23, 63), encode(1, 52)};
  const std::vector<ExperimentRecord> records =
      run_experiments(f.program, f.golden, ids, pool);
  ASSERT_EQ(records.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(records[i].id, ids[i]);
  }
}

TEST(Campaign, ResultsIndependentOfThreadCount) {
  Fixture f;
  std::vector<ExperimentId> ids;
  for (ExperimentId id = 0; id < f.golden.sample_space_size(); id += 7) {
    ids.push_back(id);
  }
  util::ThreadPool pool1(1), pool4(4);
  const auto a = run_experiments(f.program, f.golden, ids, pool1);
  const auto b = run_experiments(f.program, f.golden, ids, pool4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].result.outcome, b[i].result.outcome) << i;
    EXPECT_DOUBLE_EQ(a[i].result.injected_error, b[i].result.injected_error);
  }
}

TEST(Campaign, CompareConsumerCalledOncePerExperiment) {
  Fixture f;
  util::ThreadPool pool(4);
  std::vector<ExperimentId> ids;
  for (ExperimentId id = 0; id < 100; ++id) ids.push_back(id);

  std::set<ExperimentId> seen;
  std::size_t calls = 0;
  const auto records = run_experiments_compare(
      f.program, f.golden, ids, pool,
      [&](const ExperimentRecord& record, std::span<const double> diffs) {
        // Serialised by contract: plain containers are safe here.
        ++calls;
        seen.insert(record.id);
        EXPECT_EQ(diffs.size(), f.golden.trace.size());
      });
  EXPECT_EQ(calls, ids.size());
  EXPECT_EQ(seen.size(), ids.size());
  EXPECT_EQ(records.size(), ids.size());
}

TEST(Campaign, CompareAgreesWithPlainRunner) {
  Fixture f;
  util::ThreadPool pool(2);
  std::vector<ExperimentId> ids;
  for (ExperimentId id = 0; id < f.golden.sample_space_size(); id += 13) {
    ids.push_back(id);
  }
  const auto plain = run_experiments(f.program, f.golden, ids, pool);
  const auto compared =
      run_experiments_compare(f.program, f.golden, ids, pool, nullptr);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(plain[i].result.outcome, compared[i].result.outcome) << i;
  }
}

TEST(Campaign, CountOutcomesTallies) {
  std::vector<ExperimentRecord> records(6);
  records[0].result.outcome = fi::Outcome::kMasked;
  records[1].result.outcome = fi::Outcome::kMasked;
  records[2].result.outcome = fi::Outcome::kSdc;
  records[3].result.outcome = fi::Outcome::kCrash;
  records[4].result.outcome = fi::Outcome::kSdc;
  records[5].result.outcome = fi::Outcome::kSdc;
  const OutcomeCounts counts = count_outcomes(records);
  EXPECT_EQ(counts.masked, 2u);
  EXPECT_EQ(counts.sdc, 3u);
  EXPECT_EQ(counts.crash, 1u);
  EXPECT_EQ(counts.total(), 6u);
  EXPECT_DOUBLE_EQ(counts.sdc_fraction(), 0.5);
}

TEST(Campaign, EmptyIdsYieldEmptyRecords) {
  Fixture f;
  util::ThreadPool pool(2);
  EXPECT_TRUE(run_experiments(f.program, f.golden, {}, pool).empty());
  const OutcomeCounts counts = count_outcomes({});
  EXPECT_EQ(counts.total(), 0u);
  EXPECT_DOUBLE_EQ(counts.sdc_fraction(), 0.0);
}

}  // namespace
}  // namespace ftb::campaign
