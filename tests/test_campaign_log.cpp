#include "campaign/log.h"

#include <filesystem>
#include <fstream>
#include <span>
#include <stdexcept>

#include <gtest/gtest.h>

#include "campaign/inference.h"
#include "campaign/sampler.h"
#include "kernels/registry.h"
#include "util/cache.h"
#include "util/rng.h"

namespace ftb::campaign {
namespace {

struct Prepared {
  explicit Prepared(const char* name)
      : program(kernels::make_program(name, kernels::Preset::kTiny)),
        golden(fi::run_golden(*program)),
        pool(1) {}
  fi::ProgramPtr program;
  fi::GoldenRun golden;
  util::ThreadPool pool;
};

CampaignLog make_log(Prepared& p, std::uint64_t seed, std::uint64_t count) {
  util::Rng rng(seed);
  const std::vector<ExperimentId> ids =
      sample_uniform(rng, p.golden.sample_space_size(), count);
  CampaignLog log(p.program->config_key());
  log.append(run_experiments(*p.program, p.golden, ids, p.pool));
  return log;
}

TEST(CampaignLog, SerializeRoundTrip) {
  Prepared p("daxpy");
  const CampaignLog log = make_log(p, 1, 50);
  const auto restored = CampaignLog::deserialize(log.serialize());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->config_key(), log.config_key());
  ASSERT_EQ(restored->size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(restored->records()[i].id, log.records()[i].id);
    EXPECT_EQ(restored->records()[i].result.outcome,
              log.records()[i].result.outcome);
    EXPECT_DOUBLE_EQ(restored->records()[i].result.injected_error,
                     log.records()[i].result.injected_error);
  }
}

TEST(CampaignLog, CorruptPayloadRejected) {
  Prepared p("daxpy");
  std::string payload = make_log(p, 2, 10).serialize();
  EXPECT_FALSE(CampaignLog::deserialize(payload.substr(0, 12)).has_value());
  payload[0] ^= 0x40;
  EXPECT_FALSE(CampaignLog::deserialize(payload).has_value());
}

TEST(CampaignLog, LoadErrorsAreDiagnosed) {
  Prepared p("daxpy");
  const std::string payload = make_log(p, 11, 10).serialize();
  std::string error;

  // Truncated mid-write: drop the tail (including the CRC frame).
  EXPECT_FALSE(
      CampaignLog::deserialize(payload.substr(0, payload.size() / 2), &error)
          .has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;

  // Single bit of rot in the record area: caught by the CRC.
  std::string rotted = payload;
  rotted[payload.size() / 2] ^= 0x01;
  EXPECT_FALSE(CampaignLog::deserialize(rotted, &error).has_value());
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;

  // Wrong magic: not mistaken for corruption.
  std::string not_a_log(payload.size(), 'x');
  EXPECT_FALSE(CampaignLog::deserialize(not_a_log, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  // Wrong version word (byte 8 is the version's low byte).
  std::string wrong_version = payload;
  wrong_version[8] ^= 0x70;
  EXPECT_FALSE(CampaignLog::deserialize(wrong_version, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(CampaignLog, TruncatedFileReportsPath) {
  Prepared p("daxpy");
  const CampaignLog log = make_log(p, 12, 20);
  const auto path = std::filesystem::temp_directory_path() /
                    ("ftb_trunc_" + std::to_string(::getpid()) + ".bin");
  const std::string payload = log.serialize();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size() - 16));
  }
  std::string error;
  EXPECT_FALSE(CampaignLog::load(path.string(), &error).has_value());
  EXPECT_NE(error.find(path.string()), std::string::npos) << error;
  std::filesystem::remove(path);
}

TEST(CampaignLog, CrashReasonSurvivesRoundTrip) {
  CampaignLog log("reason-round-trip");
  ExperimentRecord record;
  record.id = 42;
  record.result.outcome = fi::Outcome::kCrash;
  record.result.crash_reason = fi::CrashReason::kSigSegv;
  record.result.injected_error = 1.5;
  record.result.output_error = 2.5;
  record.result.crash_site = 7;
  ExperimentRecord hang;
  hang.id = 43;
  hang.result.outcome = fi::Outcome::kHang;
  const ExperimentRecord batch[] = {record, hang};
  log.append(batch);

  const auto restored = CampaignLog::deserialize(log.serialize());
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->size(), 2u);
  EXPECT_EQ(restored->records()[0].result.crash_reason,
            fi::CrashReason::kSigSegv);
  EXPECT_EQ(restored->records()[1].result.outcome, fi::Outcome::kHang);
  EXPECT_EQ(restored->records()[1].result.crash_reason, fi::CrashReason::kNone);
}

TEST(CampaignLog, DetectorFlagAndModeTaggedIdsSurviveRoundTrip) {
  // v3 payload: the detector_fired flag and mode-tagged (burst / memory-
  // resident) experiment ids must come back exactly.
  ExperimentRecord detected;
  detected.id = encode(11, 52);
  detected.result.outcome = fi::Outcome::kDetected;
  detected.result.detector_fired = true;
  detected.result.output_error = 0.5;
  ExperimentRecord false_positive;  // Masked but the detector cried wolf
  false_positive.id = encode(12, 1);
  false_positive.result.outcome = fi::Outcome::kMasked;
  false_positive.result.detector_fired = true;
  ExperimentRecord mem;
  mem.id = encode_mem({/*touch_point=*/2, /*word=*/7, /*start_bit=*/3,
                       /*width=*/4});
  mem.result.outcome = fi::Outcome::kSdc;
  ExperimentRecord burst;
  burst.id = encode_burst(/*site=*/9, /*start_bit=*/50, /*width=*/3);
  burst.result.outcome = fi::Outcome::kCrash;
  const ExperimentRecord batch[] = {detected, false_positive, mem, burst};
  CampaignLog original("detector-round-trip");
  original.append(batch);

  const auto restored = CampaignLog::deserialize(original.serialize());
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->size(), 4u);
  EXPECT_EQ(restored->records()[0].result.outcome, fi::Outcome::kDetected);
  EXPECT_TRUE(restored->records()[0].result.detector_fired);
  EXPECT_TRUE(restored->records()[1].result.detector_fired);
  EXPECT_EQ(restored->records()[1].result.outcome, fi::Outcome::kMasked);
  EXPECT_EQ(restored->records()[2].id, mem.id);
  EXPECT_EQ(mode_of(restored->records()[2].id), FaultMode::kMemBurst);
  EXPECT_EQ(restored->records()[3].id, burst.id);
  EXPECT_EQ(mode_of(restored->records()[3].id), FaultMode::kBurst);
  // Serialization is canonical: a second trip is byte-identical (what the
  // resume machinery relies on).
  EXPECT_EQ(restored->serialize(), original.serialize());
}

// Writes a version-2 payload (pre-detector: no per-record flags word) by
// hand, matching the v2 encoder byte for byte.
std::string serialize_v2(const std::string& config_key,
                         std::span<const ExperimentRecord> records) {
  util::BinaryWriter writer;
  writer.put_u64(0x4654422d434c4f47ull);  // "FTB-CLOG"
  writer.put_u64(2);
  writer.put_string(config_key);
  writer.put_u64(records.size());
  for (const ExperimentRecord& record : records) {
    writer.put_u64(record.id);
    writer.put_u64(static_cast<std::uint64_t>(record.result.outcome));
    writer.put_u64(static_cast<std::uint64_t>(record.result.crash_reason));
    writer.put_f64(record.result.injected_error);
    writer.put_f64(record.result.output_error);
    writer.put_u64(record.result.crash_site);
  }
  const std::uint32_t crc =
      util::crc32(writer.buffer().data(), writer.buffer().size());
  writer.put_u64(crc);
  return {writer.buffer().begin(), writer.buffer().end()};
}

TEST(CampaignLog, VersionTwoLogsStillLoad) {
  // Back-compat: journals written before the detector existed load with
  // detector_fired defaulting to false.
  ExperimentRecord record;
  record.id = encode(5, 17);
  record.result.outcome = fi::Outcome::kSdc;
  record.result.injected_error = 0.25;
  const ExperimentRecord batch[] = {record};
  const auto restored =
      CampaignLog::deserialize(serialize_v2("old-config", batch));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->config_key(), "old-config");
  ASSERT_EQ(restored->size(), 1u);
  EXPECT_EQ(restored->records()[0].result.outcome, fi::Outcome::kSdc);
  EXPECT_FALSE(restored->records()[0].result.detector_fired);
}

TEST(CampaignLog, UnknownOutcomeIsDiagnosedByName) {
  // A v-next log carrying an outcome this binary does not know must fail
  // with the *named* diagnostic, not a bare integer.
  ExperimentRecord record;
  record.id = encode(1, 2);
  record.result.outcome = static_cast<fi::Outcome>(9);
  const ExperimentRecord batch[] = {record};
  std::string error;
  EXPECT_FALSE(
      CampaignLog::deserialize(serialize_v2("future", batch), &error)
          .has_value());
  EXPECT_NE(error.find("unknown(9)"), std::string::npos) << error;
  EXPECT_NE(error.find("Detected"), std::string::npos) << error;
}

TEST(CampaignLog, FileRoundTrip) {
  Prepared p("daxpy");
  const CampaignLog log = make_log(p, 3, 30);
  const auto path = std::filesystem::temp_directory_path() /
                    ("ftb_log_" + std::to_string(::getpid()) + ".bin");
  ASSERT_TRUE(log.save(path.string()));
  const auto restored = CampaignLog::load(path.string());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->size(), log.size());
  std::filesystem::remove(path);
  EXPECT_FALSE(CampaignLog::load(path.string()).has_value());
}

TEST(CampaignLog, MergeDedupesAndChecksKey) {
  Prepared p("daxpy");
  CampaignLog a = make_log(p, 4, 40);
  const CampaignLog b = make_log(p, 5, 40);  // overlapping ids likely
  const std::size_t union_upper_bound = a.size() + b.size();
  a.merge(b);
  EXPECT_LE(a.size(), union_upper_bound);
  const std::vector<ExperimentId> ids = a.ids();
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_LT(ids[i - 1], ids[i]);  // sorted, no duplicates
  }

  CampaignLog wrong("some-other-config");
  EXPECT_THROW(a.merge(wrong), std::invalid_argument);
}

TEST(CampaignLog, ResumedCampaignEqualsOneShot) {
  // Running a campaign in two halves, logging both, must reconstruct the
  // exact experiment set of the one-shot run.
  Prepared p("stencil2d");
  util::Rng rng(7);
  const std::vector<ExperimentId> ids =
      sample_uniform(rng, p.golden.sample_space_size(), 120);

  CampaignLog log(p.program->config_key());
  const std::span<const ExperimentId> first_half(ids.data(), 60);
  const std::span<const ExperimentId> second_half(ids.data() + 60, 60);
  log.append(run_experiments(*p.program, p.golden, first_half, p.pool));
  // "Interruption": save + reload.
  const auto reloaded = CampaignLog::deserialize(log.serialize());
  ASSERT_TRUE(reloaded.has_value());
  CampaignLog resumed = *reloaded;
  resumed.append(run_experiments(*p.program, p.golden, second_half, p.pool));
  resumed.dedupe();

  std::vector<ExperimentId> sorted_ids = ids;
  std::sort(sorted_ids.begin(), sorted_ids.end());
  EXPECT_EQ(resumed.ids(), sorted_ids);
}

TEST(CampaignLog, BoundaryFromLogMatchesDirectInference) {
  Prepared p("stencil2d");
  InferenceOptions options;
  options.sample_fraction = 0.03;
  options.seed = 9;
  options.filter = true;
  const InferenceResult direct =
      infer_uniform(*p.program, p.golden, options, p.pool);

  CampaignLog log(p.program->config_key());
  log.append(direct.records);
  const boundary::FaultToleranceBoundary rebuilt = boundary_from_log(
      *p.program, p.golden, log, {options.filter, options.prop_buffer_cap},
      p.pool);

  ASSERT_EQ(rebuilt.sites(), direct.boundary.sites());
  for (std::size_t i = 0; i < rebuilt.sites(); ++i) {
    EXPECT_DOUBLE_EQ(rebuilt.threshold(i), direct.boundary.threshold(i)) << i;
  }
}

TEST(CampaignLog, RebuildWithDifferentFilterSetting) {
  // The log lets you change analysis settings post-hoc: rebuilding without
  // the filter can only raise thresholds.
  Prepared p("cg");
  InferenceOptions options;
  options.sample_fraction = 0.02;
  options.filter = true;
  const InferenceResult direct =
      infer_uniform(*p.program, p.golden, options, p.pool);
  CampaignLog log(p.program->config_key());
  log.append(direct.records);

  const boundary::FaultToleranceBoundary unfiltered =
      boundary_from_log(*p.program, p.golden, log, {false, 32}, p.pool);
  for (std::size_t i = 0; i < unfiltered.sites(); ++i) {
    EXPECT_GE(unfiltered.threshold(i) + 1e-300, direct.boundary.threshold(i))
        << i;
  }
}

// ---------------------------------------------------------------------------
// Fuzz torture: the loader faces every single-byte corruption and every
// truncation of a valid v2 log.  None may crash; all must return nullopt
// with a non-empty diagnostic.  CRC-32 detects every single-byte change in
// the body, and a corrupted trailing frame can never match the body's CRC,
// so there are no "lucky" corruptions to tolerate.
// ---------------------------------------------------------------------------

TEST(CampaignLogFuzz, EverySingleByteCorruptionIsRejectedWithDiagnostic) {
  Prepared p("daxpy");
  const std::string payload = make_log(p, 21, 30).serialize();
  util::Rng rng(99);
  for (std::size_t pos = 0; pos < payload.size(); ++pos) {
    std::string mutated = payload;
    // XOR with a non-zero mask so the byte actually changes.
    const auto mask =
        static_cast<char>(1 + rng.next_below(255));
    mutated[pos] = static_cast<char>(mutated[pos] ^ mask);
    std::string error;
    const auto log = CampaignLog::deserialize(mutated, &error);
    EXPECT_FALSE(log.has_value()) << "byte " << pos << " mask "
                                  << static_cast<int>(mask);
    EXPECT_FALSE(error.empty()) << "byte " << pos;
  }
}

TEST(CampaignLogFuzz, EveryTruncationIsRejectedWithDiagnostic) {
  Prepared p("daxpy");
  const std::string payload = make_log(p, 22, 30).serialize();
  for (std::size_t len = 0; len < payload.size(); ++len) {
    std::string error;
    const auto log = CampaignLog::deserialize(payload.substr(0, len), &error);
    EXPECT_FALSE(log.has_value()) << "length " << len;
    EXPECT_FALSE(error.empty()) << "length " << len;
  }
}

TEST(CampaignLogFuzz, RandomGarbageNeverCrashesTheLoader) {
  util::Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = rng.next_below(512);
    std::string garbage(len, '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.next_below(256));
    }
    std::string error;
    const auto log = CampaignLog::deserialize(garbage, &error);
    EXPECT_FALSE(log.has_value()) << "trial " << trial;
    EXPECT_FALSE(error.empty()) << "trial " << trial;
  }
}

TEST(CampaignLogFuzz, CorruptedFrameKeepsDecodedStateUnobservable) {
  // A failed deserialize must not leak a partially-decoded log: the API
  // returns nullopt, so the only way to "observe" partial state would be a
  // crash -- torture the record area specifically, where decode progresses
  // furthest before the CRC verdict.
  Prepared p("daxpy");
  const std::string payload = make_log(p, 23, 16).serialize();
  const std::size_t header = 4 * 8;  // magic, version, and friends
  util::Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = payload;
    const std::size_t pos =
        header + rng.next_below(payload.size() - header);
    mutated[pos] = static_cast<char>(rng.next_below(256));
    std::string error;
    const auto log = CampaignLog::deserialize(mutated, &error);
    if (mutated[pos] == payload[pos]) {
      ASSERT_TRUE(log.has_value());  // identity rewrite: still valid
      continue;
    }
    EXPECT_FALSE(log.has_value()) << "trial " << trial << " pos " << pos;
    EXPECT_FALSE(error.empty());
  }
}

TEST(CampaignLog, RejectsWrongProgram) {
  Prepared p("daxpy");
  CampaignLog log("not-this-program");
  EXPECT_THROW(
      boundary_from_log(*p.program, p.golden, log, {}, p.pool),
      std::invalid_argument);
}

}  // namespace
}  // namespace ftb::campaign
