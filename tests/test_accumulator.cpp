#include "boundary/accumulator.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace ftb::boundary {
namespace {

using fi::Outcome;

std::vector<double> diffs_at(std::size_t sites,
                             std::initializer_list<std::pair<std::size_t, double>>
                                 entries) {
  std::vector<double> diffs(sites, 0.0);
  for (const auto& [site, value] : entries) diffs[site] = value;
  return diffs;
}

TEST(Accumulator, Algorithm1TakesPointwiseMax) {
  BoundaryAccumulator accumulator(4);
  accumulator.record_masked_propagation(diffs_at(4, {{1, 0.5}, {2, 2.0}}));
  accumulator.record_masked_propagation(diffs_at(4, {{1, 1.5}, {3, 0.25}}));
  const FaultToleranceBoundary boundary = accumulator.finalize();
  EXPECT_DOUBLE_EQ(boundary.threshold(0), 0.0);  // never touched
  EXPECT_DOUBLE_EQ(boundary.threshold(1), 1.5);
  EXPECT_DOUBLE_EQ(boundary.threshold(2), 2.0);
  EXPECT_DOUBLE_EQ(boundary.threshold(3), 0.25);
}

TEST(Accumulator, MaskedInjectionIsEvidence) {
  BoundaryAccumulator accumulator(2);
  accumulator.record_injection(0, 5, Outcome::kMasked, 0.75);
  const FaultToleranceBoundary boundary = accumulator.finalize();
  EXPECT_DOUBLE_EQ(boundary.threshold(0), 0.75);
}

TEST(Accumulator, CrashInjectionIsNeutral) {
  BoundaryAccumulator accumulator(1);
  accumulator.record_injection(0, 62, Outcome::kCrash, 1e300);
  const FaultToleranceBoundary boundary = accumulator.finalize();
  EXPECT_DOUBLE_EQ(boundary.threshold(0), 0.0);
}

TEST(Accumulator, FilterRejectsValuesAboveSdcMinimum) {
  BoundaryAccumulator unfiltered(2, {/*filter=*/false, 32});
  BoundaryAccumulator filtered(2, {/*filter=*/true, 32});

  for (auto* accumulator : {&unfiltered, &filtered}) {
    // A known SDC case at site 1 with injected error 1.0.
    accumulator->record_injection(1, 7, Outcome::kSdc, 1.0);
    // Masked propagation claims site 1 tolerates 5.0 -- contradicted above.
    accumulator->record_masked_propagation(diffs_at(2, {{1, 5.0}}));
    accumulator->record_masked_propagation(diffs_at(2, {{1, 0.5}}));
  }
  EXPECT_DOUBLE_EQ(unfiltered.finalize().threshold(1), 5.0);  // Algorithm 1
  EXPECT_DOUBLE_EQ(filtered.finalize().threshold(1), 0.5);    // Section 3.5
}

TEST(Accumulator, FilterPrunesWhenSdcEvidenceArrivesLater) {
  BoundaryAccumulator filtered(1, {/*filter=*/true, 32});
  filtered.record_masked_propagation(diffs_at(1, {{0, 5.0}}));
  filtered.record_masked_propagation(diffs_at(1, {{0, 0.5}}));
  EXPECT_DOUBLE_EQ(filtered.finalize().threshold(0), 5.0);
  // SDC at 1.0 invalidates the 5.0 even though it was accepted earlier.
  filtered.record_injection(0, 3, Outcome::kSdc, 1.0);
  EXPECT_DOUBLE_EQ(filtered.finalize().threshold(0), 0.5);
}

TEST(Accumulator, FilterRejectsEqualToSdcMinimum) {
  BoundaryAccumulator filtered(1, {/*filter=*/true, 32});
  filtered.record_injection(0, 3, Outcome::kSdc, 1.0);
  filtered.record_masked_propagation(diffs_at(1, {{0, 1.0}}));  // == min SDC
  EXPECT_DOUBLE_EQ(filtered.finalize().threshold(0), 0.0);
}

TEST(Accumulator, MaskedInjectionAboveSdcMinIsFilteredToo) {
  // Non-monotonic direct evidence: masked at 2.0 but SDC at 1.0.  The
  // filtered boundary must not exceed the SDC minimum.
  BoundaryAccumulator filtered(1, {/*filter=*/true, 32});
  filtered.record_injection(0, 3, Outcome::kSdc, 1.0);
  filtered.record_injection(0, 9, Outcome::kMasked, 2.0);
  filtered.record_injection(0, 11, Outcome::kMasked, 0.25);
  EXPECT_DOUBLE_EQ(filtered.finalize().threshold(0), 0.25);
}

TEST(Accumulator, BufferEvictionStaysConservative) {
  // Cap 2: inserting three surviving values keeps the largest two; the
  // final threshold is still one of the surviving values (never larger
  // than the true max).
  BoundaryAccumulator filtered(1, {/*filter=*/true, 2});
  filtered.record_masked_propagation(diffs_at(1, {{0, 0.1}}));
  filtered.record_masked_propagation(diffs_at(1, {{0, 0.3}}));
  filtered.record_masked_propagation(diffs_at(1, {{0, 0.2}}));
  EXPECT_DOUBLE_EQ(filtered.finalize().threshold(0), 0.3);
  // SDC below the retained values: everything prunes; threshold falls to 0
  // (conservative -- the 0.1 was evicted and cannot resurrect).
  filtered.record_injection(0, 1, Outcome::kSdc, 0.15);
  EXPECT_DOUBLE_EQ(filtered.finalize().threshold(0), 0.0);
}

TEST(Accumulator, TestedBitsTracksDistinctBits) {
  BoundaryAccumulator accumulator(1);
  EXPECT_EQ(accumulator.tested_bits(0), 0u);
  accumulator.record_injection(0, 5, Outcome::kMasked, 0.1);
  accumulator.record_injection(0, 5, Outcome::kMasked, 0.1);  // same bit
  accumulator.record_injection(0, 9, Outcome::kSdc, 2.0);
  EXPECT_EQ(accumulator.tested_bits(0), 2u);
}

TEST(Accumulator, ExactSiteUsesExhaustiveRule) {
  BoundaryAccumulator accumulator(1);
  // Test all 64 bits: masked below 1.0, SDC at >= 1.0, plus one
  // non-monotonic masked outlier at 8.0 which the exact rule must ignore.
  for (int bit = 0; bit < 63; ++bit) {
    const double error = 0.01 * (bit + 1);  // 0.01 .. 0.63
    accumulator.record_injection(0, bit, Outcome::kMasked, error);
  }
  accumulator.record_injection(0, 63, Outcome::kSdc, 0.5);
  const FaultToleranceBoundary boundary = accumulator.finalize();
  EXPECT_TRUE(boundary.is_exact(0));
  // Largest masked error strictly below the SDC minimum 0.5 is 0.49.
  EXPECT_NEAR(boundary.threshold(0), 0.49, 1e-12);
}

TEST(Accumulator, ExactSiteIgnoresPropagationEvidence) {
  BoundaryAccumulator accumulator(1);
  accumulator.record_masked_propagation(diffs_at(1, {{0, 100.0}}));
  for (int bit = 0; bit < 64; ++bit) {
    accumulator.record_injection(0, bit, bit < 32 ? Outcome::kMasked
                                                  : Outcome::kSdc,
                                 bit < 32 ? 0.1 : 1.0);
  }
  const FaultToleranceBoundary boundary = accumulator.finalize();
  EXPECT_TRUE(boundary.is_exact(0));
  EXPECT_DOUBLE_EQ(boundary.threshold(0), 0.1);  // not 100.0
}

TEST(Accumulator, NonFiniteMaskedInjectionDoesNotPoisonBoundary) {
  // Regression: a masked outcome whose injected error |x' - x| overflowed
  // to +inf (exponent flip on a large value) used to enter the pointwise
  // max and pin the site's threshold at inf -- the boundary then predicted
  // every later fault at that site masked.
  BoundaryAccumulator accumulator(1);
  accumulator.record_injection(0, 5, Outcome::kMasked, 0.75);
  accumulator.record_injection(0, 60, Outcome::kMasked,
                               std::numeric_limits<double>::infinity());
  accumulator.record_injection(0, 61, Outcome::kMasked,
                               std::numeric_limits<double>::quiet_NaN());
  const FaultToleranceBoundary boundary = accumulator.finalize();
  EXPECT_TRUE(std::isfinite(boundary.threshold(0)));
  EXPECT_DOUBLE_EQ(boundary.threshold(0), 0.75);
  EXPECT_EQ(accumulator.nonfinite_skipped(), 2u);
  // The skipped bits still count as tested -- the flip did run.
  EXPECT_EQ(accumulator.tested_bits(0), 3u);
}

TEST(Accumulator, NonFiniteSdcInjectionLeavesSdcMinimumAlone) {
  // A NaN injected error on an SDC outcome carries no usable magnitude:
  // it must not disturb min_sdc_inj (NaN compares false against
  // everything, so the old code silently ignored it -- now it is counted).
  BoundaryAccumulator filtered(1, {/*filter=*/true, 32});
  filtered.record_injection(0, 3, Outcome::kSdc,
                            std::numeric_limits<double>::quiet_NaN());
  filtered.record_injection(0, 4, Outcome::kSdc, 1.0);
  filtered.record_masked_propagation(diffs_at(1, {{0, 0.5}}));
  filtered.record_masked_propagation(diffs_at(1, {{0, 2.0}}));  // >= min SDC
  EXPECT_DOUBLE_EQ(filtered.finalize().threshold(0), 0.5);
  EXPECT_EQ(filtered.nonfinite_skipped(), 1u);
}

TEST(Accumulator, CountsFilterRejectionsAndEvictions) {
  BoundaryAccumulator filtered(1, {/*filter=*/true, 2});
  filtered.record_injection(0, 3, Outcome::kSdc, 1.0);
  filtered.record_masked_propagation(diffs_at(1, {{0, 5.0}}));  // rejected
  EXPECT_EQ(filtered.filter_rejected(), 1u);
  filtered.record_masked_propagation(diffs_at(1, {{0, 0.1}}));
  filtered.record_masked_propagation(diffs_at(1, {{0, 0.3}}));
  filtered.record_masked_propagation(diffs_at(1, {{0, 0.2}}));  // evicts 0.1
  EXPECT_EQ(filtered.prop_evicted(), 1u);
}

TEST(Accumulator, NonPositiveAndNonFiniteDiffsIgnored) {
  BoundaryAccumulator accumulator(3);
  std::vector<double> diffs = {0.0, -1.0,
                               std::numeric_limits<double>::infinity()};
  accumulator.record_masked_propagation(diffs);
  const FaultToleranceBoundary boundary = accumulator.finalize();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(boundary.threshold(i), 0.0) << i;
  }
}

}  // namespace
}  // namespace ftb::boundary
