#include "util/cache.h"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace ftb::util {
namespace {

TEST(BinaryCodec, RoundTrip) {
  BinaryWriter writer;
  writer.put_u64(0xdeadbeefcafef00dull);
  writer.put_f64(-3.14159);
  writer.put_bytes({1, 2, 3, 255});
  writer.put_f64_vec({0.5, -0.25, 1e300});
  writer.put_string("fault tolerance boundary");

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.get_u64(), 0xdeadbeefcafef00dull);
  EXPECT_DOUBLE_EQ(reader.get_f64(), -3.14159);
  EXPECT_EQ(reader.get_bytes(), (std::vector<std::uint8_t>{1, 2, 3, 255}));
  EXPECT_EQ(reader.get_f64_vec(), (std::vector<double>{0.5, -0.25, 1e300}));
  EXPECT_EQ(reader.get_string(), "fault tolerance boundary");
  EXPECT_TRUE(reader.exhausted());
}

TEST(BinaryCodec, TruncationThrows) {
  BinaryWriter writer;
  writer.put_u64(7);
  std::vector<std::uint8_t> cut = writer.buffer();
  cut.pop_back();
  BinaryReader reader(std::move(cut));
  EXPECT_THROW(reader.get_u64(), std::runtime_error);
}

TEST(BinaryCodec, NonFiniteDoublesSurvive) {
  BinaryWriter writer;
  writer.put_f64(std::numeric_limits<double>::infinity());
  writer.put_f64(std::numeric_limits<double>::quiet_NaN());
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(std::isinf(reader.get_f64()));
  EXPECT_TRUE(std::isnan(reader.get_f64()));
}

TEST(Fnv1a, StableAndDistinct) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

class CacheDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ftb_cache_test_" + std::to_string(::getpid()));
    ASSERT_EQ(setenv("FTB_CACHE_DIR", dir_.c_str(), 1), 0);
  }
  void TearDown() override {
    ASSERT_EQ(setenv("FTB_CACHE_DIR", "off", 1), 0);
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(CacheDirTest, StoreLoadRoundTrip) {
  const std::vector<std::uint8_t> payload = {9, 8, 7, 6};
  cache_store("key-one", payload);
  const auto loaded = cache_load("key-one");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, payload);
}

TEST_F(CacheDirTest, MissForUnknownKey) {
  EXPECT_FALSE(cache_load("never-stored").has_value());
}

TEST_F(CacheDirTest, OverwriteReplacesPayload) {
  cache_store("key", {1});
  cache_store("key", {2, 3});
  const auto loaded = cache_load("key");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, (std::vector<std::uint8_t>{2, 3}));
}

TEST_F(CacheDirTest, CorruptFileIsAMiss) {
  cache_store("key", {1, 2, 3});
  // Truncate the stored file behind the cache's back.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::filesystem::resize_file(entry.path(), 4);
  }
  EXPECT_FALSE(cache_load("key").has_value());
}

TEST(CacheDisabled, OffMeansNoop) {
  ASSERT_EQ(setenv("FTB_CACHE_DIR", "off", 1), 0);
  EXPECT_TRUE(cache_dir().empty());
  cache_store("key", {1});                       // must not crash
  EXPECT_FALSE(cache_load("key").has_value());   // and never hit
}

}  // namespace
}  // namespace ftb::util
