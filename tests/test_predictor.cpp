#include "boundary/predictor.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "fi/fpbits.h"

namespace ftb::boundary {
namespace {

TEST(Predictor, NonFiniteFlipPredictsCrash) {
  const FaultToleranceBoundary boundary({1e9});
  // Bit 62 of 1.0 flips the exponent to the inf/nan class.
  EXPECT_EQ(predict_flip(boundary, 0, 1.0, 62), fi::Outcome::kCrash);
}

TEST(Predictor, ThresholdSplitsMaskedFromSdc) {
  const double value = 1.0;
  // Pick a threshold between the bit-10 and bit-40 flip errors.
  const double small = fi::bit_flip_error(value, 10);
  const double large = fi::bit_flip_error(value, 40);
  ASSERT_LT(small, large);
  const FaultToleranceBoundary boundary({0.5 * (small + large)});
  EXPECT_EQ(predict_flip(boundary, 0, value, 10), fi::Outcome::kMasked);
  EXPECT_EQ(predict_flip(boundary, 0, value, 40), fi::Outcome::kSdc);
}

TEST(Predictor, UnknownSitePredictsSdcForEveryRealError) {
  const FaultToleranceBoundary boundary({0.0});
  const SitePrediction prediction = predict_site(boundary, 0, 1.0);
  // value 1.0: sign-bit flip gives error 2.0 (SDC), mantissa flips give
  // positive errors (SDC)...  Only nonfinite flips predict Crash.  Nothing
  // can be masked except zero-error flips, which 1.0 does not have.
  EXPECT_EQ(prediction.masked, 0u);
  EXPECT_GT(prediction.sdc, 0u);
  EXPECT_EQ(prediction.masked + prediction.sdc + prediction.crash,
            static_cast<std::uint32_t>(fi::kBitsPerValue));
}

TEST(Predictor, ZeroGoldenValueSignFlipIsMasked) {
  // flip(0.0, sign) = -0.0: zero injected error is within any threshold.
  const FaultToleranceBoundary boundary({0.0});
  EXPECT_EQ(predict_flip(boundary, 0, 0.0, fi::kSignBit),
            fi::Outcome::kMasked);
}

TEST(Predictor, UnboundedSiteMasksAllFiniteFlips) {
  const FaultToleranceBoundary boundary(
      {FaultToleranceBoundary::kUnbounded});
  const SitePrediction prediction = predict_site(boundary, 0, 1.0);
  EXPECT_EQ(prediction.sdc, 0u);
  EXPECT_EQ(prediction.masked + prediction.crash,
            static_cast<std::uint32_t>(fi::kBitsPerValue));
}

TEST(Predictor, SdcRatioDenominatorIs64) {
  SitePrediction prediction;
  prediction.sdc = 16;
  EXPECT_DOUBLE_EQ(prediction.sdc_ratio(), 0.25);
}

TEST(Predictor, ProfileAndOverallAgree) {
  const std::vector<double> trace = {1.0, 2.0, 0.5};
  const FaultToleranceBoundary boundary({0.0, 1e300, 1e-3});
  const std::vector<double> profile = predicted_sdc_profile(boundary, trace);
  ASSERT_EQ(profile.size(), 3u);
  double mean = 0.0;
  for (double p : profile) mean += p;
  mean /= 3.0;
  EXPECT_NEAR(predicted_overall_sdc(boundary, trace), mean, 1e-12);
  // Site 1 has an (effectively) unbounded threshold: no predicted SDC.
  EXPECT_DOUBLE_EQ(profile[1], 0.0);
  // Site 0 is unknown: maximal predicted SDC among the three.
  EXPECT_GE(profile[0], profile[2]);
}

class PredictorThresholdSweep : public ::testing::TestWithParam<int> {};

TEST_P(PredictorThresholdSweep, MonotoneInThreshold) {
  // Property: raising the threshold can only move bits from SDC to Masked.
  const double value = 3.14159;
  const int bit = GetParam();
  if (fi::flip_is_nonfinite(value, bit)) GTEST_SKIP();
  const double error = fi::bit_flip_error(value, bit);
  const FaultToleranceBoundary below({std::nextafter(error, 0.0)});
  const FaultToleranceBoundary at({error});
  EXPECT_EQ(predict_flip(at, 0, value, bit), fi::Outcome::kMasked);
  if (error > 0.0) {
    EXPECT_EQ(predict_flip(below, 0, value, bit), fi::Outcome::kSdc);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, PredictorThresholdSweep,
                         ::testing::Values(0, 13, 26, 39, 51, 52, 55, 63));

}  // namespace
}  // namespace ftb::boundary
