// Compositional section-graph inference (src/sections/): carve determinism
// and signature chaining, fingerprint sensitivity, the composed-artifact
// wire format (round-trip plus the test_frame discipline -- every 1-byte
// corruption and every truncation rejected with a diagnostic, never a
// crash), incremental reuse/splice byte-identity, drain/resume, and the
// composed-vs-monolithic tolerance EXPERIMENTS.md states: against a
// monolithic boundary built from the union of the per-section id sets the
// composed boundary is pointwise conservative (0 optimistic sites, 0
// composed-only sites) and agrees on 100% of probe predictions.
#include "sections/driver.h"

#include <algorithm>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "campaign/campaign.h"
#include "campaign/log.h"
#include "campaign/sample_space.h"
#include "kernels/registry.h"
#include "sections/compose.h"
#include "sections/section.h"
#include "util/thread_pool.h"

namespace ftb::sections {
namespace {

namespace fs = std::filesystem;

struct Prepared {
  explicit Prepared(const std::string& name)
      : program(kernels::make_program(name, kernels::Preset::kTiny)),
        golden(fi::run_golden(*program)),
        pool(2) {}
  fi::ProgramPtr program;
  fi::GoldenRun golden;
  util::ThreadPool pool;
};

/// Fresh empty directory under the system temp dir, removed on destruction.
struct TempDir {
  explicit TempDir(const char* tag)
      : path(fs::temp_directory_path() /
             (std::string("ftb_sections_") + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  fs::path path;
};

SectionCampaignOptions base_options(const Prepared& p, const TempDir& dir,
                                    std::uint64_t batch = 32) {
  SectionCampaignOptions options;
  options.store_dir = dir.path.string();
  options.stem = "t";
  options.kernel = "cg";
  options.preset = "tiny";
  options.carve.batch_per_section = batch;
  options.flush_every = 16;
  options.pool = const_cast<util::ThreadPool*>(&p.pool);
  return options;
}

/// A small hand-built artifact whose serialized form the fuzz tests rot.
/// Values are arbitrary but self-consistent: ranges tile [0, 10) and the
/// slices match the section sizes.
ComposedArtifact sample_artifact() {
  ComposedArtifact artifact;
  artifact.config_key = "demo-kernel-v1";
  artifact.kernel = "demo";
  artifact.preset = "tiny";
  artifact.seed = 7;
  artifact.total_sites = 10;
  SectionRecord a;
  a.spec = {"setup", 0, 4, 0xcbf29ce484222325ull, 0x1111ull, 0xaaaaull, 8};
  a.executed = 8;
  a.masked = 5;
  a.sdc = 3;
  a.exit_bound = 0.25;
  a.entry_tolerance = 1e-6;
  a.journal = "t.setup";
  a.thresholds = {1e-3, 0.0, 2e-2, 5e-1};
  a.exact = {1, 0, 0, 1};
  SectionRecord b;
  b.spec = {"solve", 4, 10, 0x1111ull, 0x2222ull, 0xbbbbull, 12};
  b.executed = 12;
  b.masked = 7;
  b.crash = 2;
  b.hang = 1;
  b.detected = 2;
  b.exit_bound = 1e-4;
  b.entry_tolerance = 3e-2;
  b.journal = "t.solve";
  b.thresholds = {0.0, 1e-5, 4e-2, 0.0, 9e-1, 2e-3};
  b.exact = {0, 1, 1, 0, 0, 1};
  artifact.sections = {a, b};
  return artifact;
}

// ---------------------------------------------------------------------------
// Carving

TEST(Sections, CarveTilesTraceAndChainsSignatures) {
  Prepared p("fft");  // fft tiny carves the most sections of the tiny presets
  const SectionPlan plan =
      carve_sections(p.program->config_key(), p.golden, {});
  ASSERT_GT(plan.sections.size(), 2u);
  EXPECT_EQ(plan.total_sites, p.golden.trace.size());

  std::uint64_t expect_begin = 0;
  for (std::size_t i = 0; i < plan.sections.size(); ++i) {
    const SectionSpec& spec = plan.sections[i];
    EXPECT_EQ(spec.begin, expect_begin) << spec.name;
    EXPECT_GT(spec.end, spec.begin) << spec.name;
    expect_begin = spec.end;
    // The value signatures are positions in one rolling sweep, so each
    // edge's entry signature is its predecessor's exit signature and both
    // equal the trace signature at the cut.
    EXPECT_EQ(spec.entry_sig, trace_signature(p.golden.trace, spec.begin));
    EXPECT_EQ(spec.exit_sig, trace_signature(p.golden.trace, spec.end));
    if (i > 0) {
      EXPECT_EQ(spec.entry_sig, plan.sections[i - 1].exit_sig) << spec.name;
    }
  }
  EXPECT_EQ(expect_begin, plan.total_sites);

  // Names are unique (find() resolves each spec to itself).
  for (const SectionSpec& spec : plan.sections) {
    EXPECT_EQ(plan.find(spec.name), &spec);
  }

  // Re-carving the same golden run is deterministic down to fingerprints.
  const SectionPlan again =
      carve_sections(p.program->config_key(), p.golden, {});
  ASSERT_EQ(again.sections.size(), plan.sections.size());
  for (std::size_t i = 0; i < plan.sections.size(); ++i) {
    EXPECT_EQ(again.sections[i].fingerprint, plan.sections[i].fingerprint);
  }
}

TEST(Sections, BatchOverrideDirtiesExactlyThatSection) {
  Prepared p("cg");
  const SectionPlan base =
      carve_sections(p.program->config_key(), p.golden, {});
  ASSERT_GE(base.sections.size(), 2u);
  const std::string victim = base.sections.back().name;

  CarveOptions options;
  options.batch_overrides = victim + "=96";
  const SectionPlan dirty =
      carve_sections(p.program->config_key(), p.golden, options);
  ASSERT_EQ(dirty.sections.size(), base.sections.size());
  for (std::size_t i = 0; i < base.sections.size(); ++i) {
    if (base.sections[i].name == victim) {
      EXPECT_NE(dirty.sections[i].fingerprint, base.sections[i].fingerprint);
      EXPECT_EQ(dirty.sections[i].batch, 96u);
    } else {
      EXPECT_EQ(dirty.sections[i].fingerprint, base.sections[i].fingerprint)
          << base.sections[i].name;
    }
  }
}

TEST(Sections, UnknownBatchOverrideThrows) {
  Prepared p("cg");
  CarveOptions options;
  options.batch_overrides = "no-such-section=8";
  EXPECT_THROW(carve_sections(p.program->config_key(), p.golden, options),
               std::invalid_argument);
}

TEST(Sections, SampleIdsDeterministicSortedAndInRange) {
  Prepared p("cg");
  const SectionPlan plan =
      carve_sections(p.program->config_key(), p.golden, {});
  for (const SectionSpec& spec : plan.sections) {
    const std::vector<campaign::ExperimentId> ids =
        section_sample_ids(spec, plan.seed);
    EXPECT_EQ(ids.size(), std::min<std::uint64_t>(spec.batch,
                                                  spec.sample_space()));
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    EXPECT_EQ(std::set<campaign::ExperimentId>(ids.begin(), ids.end()).size(),
              ids.size());
    for (const campaign::ExperimentId id : ids) {
      ASSERT_TRUE(campaign::is_classic(id));
      const std::uint64_t site = campaign::site_of(id);
      EXPECT_GE(site, spec.begin) << spec.name;
      EXPECT_LT(site, spec.end) << spec.name;
    }
    EXPECT_EQ(section_sample_ids(spec, plan.seed), ids);
    // A different plan seed draws a different sample.
    EXPECT_NE(section_sample_ids(spec, plan.seed + 1), ids);
  }
}

// ---------------------------------------------------------------------------
// Composed-artifact wire format

TEST(ComposedArtifact, SerializeRoundTrips) {
  const ComposedArtifact artifact = sample_artifact();
  const std::string bytes = serialize(artifact);

  std::string error;
  const auto parsed =
      deserialize_composed(bytes, artifact.config_key, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->config_key, artifact.config_key);
  EXPECT_EQ(parsed->kernel, artifact.kernel);
  EXPECT_EQ(parsed->seed, artifact.seed);
  EXPECT_EQ(parsed->total_sites, artifact.total_sites);
  ASSERT_EQ(parsed->sections.size(), artifact.sections.size());
  EXPECT_EQ(parsed->sections[1].spec.name, "solve");
  EXPECT_EQ(parsed->sections[1].thresholds, artifact.sections[1].thresholds);
  EXPECT_EQ(parsed->sections[1].exact, artifact.sections[1].exact);
  EXPECT_EQ(parsed->sections[0].journal, "t.setup");

  // Re-serializing the parse is byte-identical: the format is canonical,
  // which is what lets incremental splices be compared with cmp.
  EXPECT_EQ(serialize(*parsed), bytes);

  // Config check: a mismatched expectation is rejected, "" skips it.
  EXPECT_FALSE(deserialize_composed(bytes, "other-config", &error));
  EXPECT_NE(error.find("other-config"), std::string::npos);
  EXPECT_TRUE(deserialize_composed(bytes, ""));
}

TEST(ComposedArtifact, ComposeSplicesSlicesAtScaleOne) {
  const ComposedArtifact artifact = sample_artifact();
  // sample_artifact chains solve.entry_sig onto setup.exit_sig, so both
  // sections splice unscaled.
  EXPECT_EQ(artifact.edge_scale(0), 1.0);
  EXPECT_EQ(artifact.edge_scale(1), 1.0);
  const boundary::FaultToleranceBoundary built = artifact.compose();
  ASSERT_EQ(built.sites(), artifact.total_sites);
  EXPECT_EQ(built.threshold(2), 2e-2);
  EXPECT_EQ(built.threshold(4 + 4), 9e-1);
  EXPECT_TRUE(built.is_exact(3));
  EXPECT_FALSE(built.is_exact(1));
}

TEST(ComposedArtifact, BrokenSignatureChainScalesConservatively) {
  ComposedArtifact artifact = sample_artifact();
  // Forge a stale splice: solve's record was built against a different
  // upstream (entry_sig no longer matches setup's exit_sig).  The incoming
  // bound (0.25) exceeds solve's entry tolerance (3e-2), so solve's slice
  // shrinks by tolerance/bound and loses its exact flags.
  artifact.sections[1].spec.entry_sig ^= 1;
  const double scale = artifact.edge_scale(1);
  EXPECT_DOUBLE_EQ(scale, 3e-2 / 0.25);
  const boundary::FaultToleranceBoundary built = artifact.compose();
  EXPECT_DOUBLE_EQ(built.threshold(4 + 4), 9e-1 * scale);
  EXPECT_FALSE(built.is_exact(4 + 1));
  // The first section is never scaled.
  EXPECT_EQ(built.threshold(2), 2e-2);
}

TEST(ComposedArtifact, EveryByteCorruptionRejected) {
  const std::string bytes = serialize(sample_artifact());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string rotted = bytes;
    rotted[i] = static_cast<char>(rotted[i] ^ 0x5a);
    std::string error;
    const auto parsed = deserialize_composed(rotted, "", &error);
    EXPECT_FALSE(parsed.has_value()) << "byte " << i << " xor 0x5a accepted";
    EXPECT_FALSE(error.empty()) << "byte " << i << ": no diagnostic";
  }
}

TEST(ComposedArtifact, EveryTruncationRejected) {
  const std::string bytes = serialize(sample_artifact());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::string error;
    const auto parsed =
        deserialize_composed(bytes.substr(0, len), "", &error);
    EXPECT_FALSE(parsed.has_value()) << "prefix of " << len << " accepted";
    EXPECT_FALSE(error.empty()) << "prefix of " << len << ": no diagnostic";
  }
}

TEST(ComposedArtifact, TrailingGarbageRejected) {
  std::string bytes = serialize(sample_artifact());
  bytes.push_back('\0');
  std::string error;
  EXPECT_FALSE(deserialize_composed(bytes, "", &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Driver: full compose, incremental reuse, splice byte-identity, drain.

TEST(SectionCampaign, FullComposeThenIncrementalReuseIsByteIdentical) {
  Prepared p("cg");
  TempDir dir("reuse");
  const SectionCampaignOptions options = base_options(p, dir);

  const SectionCampaignResult full =
      run_section_campaigns(*p.program, p.golden, nullptr, options);
  ASSERT_FALSE(full.stopped);
  EXPECT_GT(full.executed, 0u);
  EXPECT_EQ(full.dirty.size(), full.artifact.sections.size());
  EXPECT_TRUE(full.reused.empty());

  // Every section journal landed next to the stem.
  for (const SectionRecord& record : full.artifact.sections) {
    EXPECT_TRUE(fs::exists(dir.path / (record.journal + ".clog")))
        << record.journal;
  }

  // Same config against the previous artifact: nothing is dirty, nothing
  // runs, and the spliced artifact serializes byte-identically.
  const SectionCampaignResult again =
      run_section_campaigns(*p.program, p.golden, &full.artifact, options);
  ASSERT_FALSE(again.stopped);
  EXPECT_EQ(again.executed, 0u);
  EXPECT_TRUE(again.dirty.empty());
  EXPECT_EQ(again.reused.size(), full.artifact.sections.size());
  EXPECT_EQ(serialize(again.artifact), serialize(full.artifact));
}

TEST(SectionCampaign, OneDirtySectionSplicesByteIdenticallyToFullCompose) {
  Prepared p("cg");
  TempDir incremental_dir("incr");
  TempDir fresh_dir("fresh");

  SectionCampaignOptions options = base_options(p, incremental_dir);
  const SectionCampaignResult full =
      run_section_campaigns(*p.program, p.golden, nullptr, options);
  ASSERT_FALSE(full.stopped);
  const std::string victim = full.artifact.sections.back().spec.name;

  // Touch one section's budget: only it re-runs...
  options.carve.batch_overrides = victim + "=48";
  const SectionCampaignResult spliced =
      run_section_campaigns(*p.program, p.golden, &full.artifact, options);
  ASSERT_FALSE(spliced.stopped);
  EXPECT_EQ(spliced.dirty, std::vector<std::string>{victim});
  EXPECT_EQ(spliced.reused.size(), full.artifact.sections.size() - 1);
  EXPECT_EQ(spliced.executed, 48u);

  // ...and the spliced artifact matches a from-scratch full compose of the
  // same configuration byte for byte (same stem, separate directory so the
  // fresh run cannot resume the incremental run's journals).
  SectionCampaignOptions fresh_options = options;
  fresh_options.store_dir = fresh_dir.path.string();
  const SectionCampaignResult fresh =
      run_section_campaigns(*p.program, p.golden, nullptr, fresh_options);
  ASSERT_FALSE(fresh.stopped);
  EXPECT_EQ(fresh.dirty.size(), fresh.artifact.sections.size());
  EXPECT_EQ(serialize(spliced.artifact), serialize(fresh.artifact));
}

TEST(SectionCampaign, DrainLeavesResumableJournalsAndResumesByteIdentically) {
  Prepared p("cg");
  TempDir drained_dir("drain");
  TempDir reference_dir("ref");

  // Drain after the first section finishes: the driver polls should_stop
  // between sections, so the run stops with a partial plan on disk.
  SectionCampaignOptions options = base_options(p, drained_dir);
  int sections_started = 0;
  options.should_stop = [&] { return sections_started++ >= 1; };
  const SectionCampaignResult drained =
      run_section_campaigns(*p.program, p.golden, nullptr, options);
  EXPECT_TRUE(drained.stopped);
  EXPECT_LT(drained.dirty.size(), 3u);

  // Resume without the stop signal: the finished sections' journals are
  // replayed (no experiment re-runs) and the final artifact is
  // byte-identical to a never-interrupted run.
  options.should_stop = nullptr;
  const SectionCampaignResult resumed =
      run_section_campaigns(*p.program, p.golden, nullptr, options);
  ASSERT_FALSE(resumed.stopped);

  SectionCampaignOptions reference_options = base_options(p, reference_dir);
  const SectionCampaignResult reference = run_section_campaigns(
      *p.program, p.golden, nullptr, reference_options);
  ASSERT_FALSE(reference.stopped);
  EXPECT_EQ(serialize(resumed.artifact), serialize(reference.artifact));
  // The resumed run only executed what the drained run had not journaled.
  EXPECT_EQ(drained.executed + resumed.executed, reference.executed);
}

// ---------------------------------------------------------------------------
// Composed vs monolithic: the stated tolerance.

TEST(SectionCampaign, ComposedIsPointwiseConservativeAgainstMonolithic) {
  Prepared p("cg");
  TempDir dir("verify");
  const SectionCampaignOptions options = base_options(p, dir);
  const SectionCampaignResult result =
      run_section_campaigns(*p.program, p.golden, nullptr, options);
  ASSERT_FALSE(result.stopped);
  const boundary::FaultToleranceBoundary composed = result.artifact.compose();

  // Monolithic boundary over the union of the per-section id sets: same
  // experiments, one accumulator.  Sections partition the ids by site, so
  // each per-section accumulator sees a subset of this evidence and the
  // composed boundary must be pointwise conservative.
  const SectionPlan plan =
      carve_sections(p.program->config_key(), p.golden, options.carve);
  std::vector<campaign::ExperimentId> ids;
  for (const SectionSpec& spec : plan.sections) {
    const auto batch = section_sample_ids(spec, plan.seed);
    ids.insert(ids.end(), batch.begin(), batch.end());
  }
  campaign::CampaignLog log(p.program->config_key());
  log.append(campaign::run_experiments(*p.program, p.golden, ids, p.pool));
  log.dedupe();
  const boundary::FaultToleranceBoundary monolithic = campaign::boundary_from_log(
      *p.program, p.golden, log, {options.filter, 32}, p.pool);

  const CompositionCheck check =
      compare_boundaries(composed, monolithic, log.records());
  EXPECT_EQ(check.composed_optimistic, 0u);
  EXPECT_EQ(check.composed_only, 0u);
  EXPECT_GT(check.common_informed, 0u);
  EXPECT_EQ(check.probes, log.records().size());
  EXPECT_DOUBLE_EQ(check.agreement(), 1.0);
}

}  // namespace
}  // namespace ftb::sections
