// Durable publication tests: write_file_durable must be atomic and honest
// (a failed fsync is a failed write, with the previous file intact), and
// AppendLog must never let a torn tail accumulate in front of later
// appends.  The chaos layer supplies the fault injection, which is exactly
// the failure-propagation discipline the paper applies to programs, turned
// on the persistence layer itself.
#include "util/durable_file.h"

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "boundary/boundary.h"
#include "boundary/serialize.h"
#include "campaign/log.h"
#include "chaos/chaos.h"

namespace ftb::util {
namespace {

namespace fs = std::filesystem;

class DurableFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ftb_durable_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    chaos::disable();
    fs::remove_all(dir_);
  }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static std::optional<std::string> slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  static void arm_chaos(double short_io, double eintr, double write_error,
                        double fsync_error) {
    chaos::ChaosOptions options;
    options.enabled = true;
    options.seed = 11;
    options.short_io = short_io;
    options.eintr = eintr;
    options.write_error = write_error;
    options.fsync_error = fsync_error;
    chaos::configure(options);
  }

  fs::path dir_;
};

TEST_F(DurableFileTest, RoundTripsAndOverwrites) {
  const std::string target = path("data.bin");
  ASSERT_TRUE(write_file_durable(target, std::string("first")));
  EXPECT_EQ(slurp(target), "first");
  ASSERT_TRUE(write_file_durable(target, std::string("second, longer")));
  EXPECT_EQ(slurp(target), "second, longer");
}

TEST_F(DurableFileTest, ShortWritesAndEintrAreAbsorbed) {
  arm_chaos(/*short_io=*/0.5, /*eintr=*/0.3, /*write_error=*/0.0,
            /*fsync_error=*/0.0);
  const std::string target = path("data.bin");
  std::string payload(8192, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i % 251);
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(write_file_durable(target, payload)) << "iteration " << i;
  }
  chaos::disable();
  EXPECT_EQ(slurp(target), payload);
  EXPECT_GT(chaos::stats().total(), 0u);
}

TEST_F(DurableFileTest, FailedFsyncLeavesThePreviousFileIntact) {
  const std::string target = path("data.bin");
  ASSERT_TRUE(write_file_durable(target, std::string("durable")));

  arm_chaos(0.0, 0.0, /*write_error=*/0.0, /*fsync_error=*/1.0);
  std::string error;
  EXPECT_FALSE(write_file_durable(target, std::string("lost"), &error));
  EXPECT_FALSE(error.empty());
  chaos::disable();

  EXPECT_EQ(slurp(target), "durable");
  // The staging tmp must not linger either.
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& entry : fs::directory_iterator(dir_)) {
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(DurableFileTest, WriteErrorFailsCleanly) {
  arm_chaos(0.0, 0.0, /*write_error=*/1.0, /*fsync_error=*/0.0);
  std::string error;
  EXPECT_FALSE(write_file_durable(path("data.bin"), std::string("x"), &error));
  EXPECT_FALSE(error.empty());
  chaos::disable();
  EXPECT_FALSE(fs::exists(path("data.bin")));
}

// Regression for the atomic-rename sites that used to skip fsync: a save
// that cannot be made durable must report failure and leave the previous
// artifact untouched, not ack and hope.
TEST_F(DurableFileTest, CampaignLogSaveSurfacesFsyncFailure) {
  campaign::CampaignLog log("daxpy|tiny|test");
  const std::string target = path("job.clog");
  ASSERT_TRUE(log.save(target));
  const auto before = slurp(target);
  ASSERT_TRUE(before.has_value());

  arm_chaos(0.0, 0.0, 0.0, /*fsync_error=*/1.0);
  EXPECT_FALSE(log.save(target));
  chaos::disable();
  EXPECT_EQ(slurp(target), before);
  EXPECT_TRUE(campaign::CampaignLog::load(target).has_value());
}

TEST_F(DurableFileTest, BoundarySaveSurfacesFsyncFailure) {
  const boundary::FaultToleranceBoundary built(std::vector<double>(8, 0.5));
  const std::string target = path("b.boundary");
  ASSERT_TRUE(boundary::save_to_file(built, "cfg", target));
  const auto before = slurp(target);
  ASSERT_TRUE(before.has_value());

  arm_chaos(0.0, 0.0, 0.0, /*fsync_error=*/1.0);
  EXPECT_FALSE(boundary::save_to_file(built, "cfg", target));
  chaos::disable();
  EXPECT_EQ(slurp(target), before);
  EXPECT_TRUE(boundary::load_from_file(target, "cfg").has_value());
}

TEST_F(DurableFileTest, AppendLogRollsBackTornAppends) {
  const std::string target = path("records.log");
  AppendLog log;
  ASSERT_TRUE(log.open(target));
  const std::string first = "record-one";
  ASSERT_TRUE(log.append(first.data(), first.size()));
  EXPECT_EQ(log.size(), first.size());

  // A failed fsync mid-append must truncate back to the last good record.
  arm_chaos(0.0, 0.0, 0.0, /*fsync_error=*/1.0);
  const std::string doomed = "record-two-doomed";
  std::string error;
  EXPECT_FALSE(log.append(doomed.data(), doomed.size(), &error));
  EXPECT_FALSE(error.empty());
  chaos::disable();
  EXPECT_EQ(log.size(), first.size());

  const std::string third = "record-three";
  ASSERT_TRUE(log.append(third.data(), third.size()));
  log.close();

  // The file holds exactly record one then record three, contiguous.
  EXPECT_EQ(slurp(target), first + third);
}

}  // namespace
}  // namespace ftb::util
