#include "util/ascii_plot.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace ftb::util {
namespace {

TEST(AsciiPlot, RendersGlyphsAndLegend) {
  const Series series[] = {
      {"rising", {0.0, 0.25, 0.5, 0.75, 1.0}, '*'},
      {"flat", {0.5, 0.5, 0.5, 0.5, 0.5}, 'o'},
  };
  const std::string text = plot(series);
  EXPECT_NE(text.find('*'), std::string::npos);
  EXPECT_NE(text.find('o'), std::string::npos);
  EXPECT_NE(text.find("rising"), std::string::npos);
  EXPECT_NE(text.find("flat"), std::string::npos);
  EXPECT_NE(text.find("legend"), std::string::npos);
}

TEST(AsciiPlot, FixedYRangeShowsEndpoints) {
  PlotOptions options;
  options.fix_y_range = true;
  options.y_min = 0.0;
  options.y_max = 1.0;
  options.height = 5;
  const Series series[] = {{"s", {0.0, 1.0}, '*'}};
  const std::string text = plot(series, options);
  EXPECT_NE(text.find("1.0000"), std::string::npos);
  EXPECT_NE(text.find("0.0000"), std::string::npos);
}

TEST(AsciiPlot, RisingSeriesDescendsRows) {
  // In terminal coordinates larger values print on earlier (higher) rows:
  // the last column's glyph must appear above the first column's.
  PlotOptions options;
  options.width = 10;
  options.height = 10;
  options.fix_y_range = true;
  options.y_min = 0.0;
  options.y_max = 1.0;
  const Series series[] = {{"s", {0.05, 0.95}, '*'}};
  const std::string text = plot(series, options);
  const std::size_t first_star = text.find('*');
  const std::size_t last_star = text.rfind('*');
  // Compute rows by counting newlines before each position.
  const auto row_of = [&](std::size_t pos) {
    return std::count(text.begin(), text.begin() + pos, '\n');
  };
  EXPECT_LT(row_of(first_star), row_of(last_star));
}

TEST(AsciiPlot, HandlesEmptyAndNanSeries) {
  const Series empty[] = {{"empty", {}, '*'}};
  EXPECT_FALSE(plot(empty).empty());

  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Series with_nan[] = {{"nan", {nan, 1.0, nan}, '*'}};
  const std::string text = plot(with_nan);
  EXPECT_NE(text.find('*'), std::string::npos);  // the finite point plots
}

TEST(AsciiPlot, SeriesLongerThanWidthIsResampled) {
  std::vector<double> long_series(1000);
  for (std::size_t i = 0; i < long_series.size(); ++i) {
    long_series[i] = static_cast<double>(i);
  }
  PlotOptions options;
  options.width = 20;
  const Series series[] = {{"long", long_series, '*'}};
  const std::string text = plot(series, options);
  // Every column should carry a glyph (dense series, no gaps).
  std::size_t stars = 0;
  for (char ch : text) {
    if (ch == '*') ++stars;
  }
  EXPECT_GE(stars, 20u);
}

}  // namespace
}  // namespace ftb::util
