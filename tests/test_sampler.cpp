#include "campaign/sampler.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ftb::campaign {
namespace {

TEST(SampleUniform, DistinctSortedInRange) {
  util::Rng rng(1);
  const std::vector<ExperimentId> picked = sample_uniform(rng, 1000, 100);
  ASSERT_EQ(picked.size(), 100u);
  EXPECT_TRUE(std::is_sorted(picked.begin(), picked.end()));
  const std::set<ExperimentId> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 100u);
  for (ExperimentId id : picked) EXPECT_LT(id, 1000u);
}

TEST(SampleUniform, ClampsToSpace) {
  util::Rng rng(2);
  EXPECT_EQ(sample_uniform(rng, 10, 50).size(), 10u);
}

TEST(SampleBiased, ReturnsAllWhenKCoversCandidates) {
  util::Rng rng(3);
  const std::vector<ExperimentId> candidates = {5, 7, 9};
  const std::vector<double> info(1, 0.0);  // site 0 only (ids < 64)
  const std::vector<ExperimentId> picked =
      sample_biased(rng, candidates, info, 10);
  EXPECT_EQ(picked, candidates);
}

TEST(SampleBiased, FullPoolRoundReturnsSortedIds) {
  // Regression: when k covered the whole candidate pool, the early-return
  // path handed back the candidates in their original order, breaking the
  // sorted-ascending postcondition that infer_adaptive's binary_search
  // over "just tested" ids relies on.
  util::Rng rng(5);
  const std::vector<ExperimentId> candidates = {9, 5, 7};
  const std::vector<double> info(1, 0.0);  // site 0 only (ids < 64)
  const std::vector<ExperimentId> picked =
      sample_biased(rng, candidates, info, 3);
  EXPECT_EQ(picked, (std::vector<ExperimentId>{5, 7, 9}));
}

TEST(SampleBiased, DistinctAndFromCandidateSet) {
  util::Rng rng(4);
  std::vector<ExperimentId> candidates;
  for (ExperimentId id = 0; id < 640; id += 2) candidates.push_back(id);
  const std::vector<double> info(10, 1.0);  // sites 0..9
  const std::vector<ExperimentId> picked =
      sample_biased(rng, candidates, info, 50);
  ASSERT_EQ(picked.size(), 50u);
  EXPECT_TRUE(std::is_sorted(picked.begin(), picked.end()));
  const std::set<ExperimentId> candidate_set(candidates.begin(),
                                             candidates.end());
  const std::set<ExperimentId> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 50u);
  for (ExperimentId id : picked) EXPECT_TRUE(candidate_set.count(id));
}

TEST(SampleBiased, PrefersLowInformationSites) {
  // Site 0 has huge information, site 1 none: the 1/(1+S) bias must pull
  // nearly all picks to site 1.
  std::vector<ExperimentId> candidates;
  for (ExperimentId id = 0; id < 128; ++id) candidates.push_back(id);
  std::vector<double> info = {999.0, 0.0};

  std::size_t site1_picks = 0, total = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    util::Rng rng(100 + seed);
    for (ExperimentId id : sample_biased(rng, candidates, info, 16)) {
      ++total;
      if (site_of(id) == 1) ++site1_picks;
    }
  }
  EXPECT_GT(static_cast<double>(site1_picks) / static_cast<double>(total),
            0.95);
}

TEST(SampleBiased, UniformWhenInformationIsEqual) {
  std::vector<ExperimentId> candidates;
  for (ExperimentId id = 0; id < 64 * 4; ++id) candidates.push_back(id);
  const std::vector<double> info(4, 5.0);

  std::map<std::uint64_t, int> per_site;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    util::Rng rng(seed);
    for (ExperimentId id : sample_biased(rng, candidates, info, 32)) {
      ++per_site[site_of(id)];
    }
  }
  const double expected = 50.0 * 32.0 / 4.0;
  for (const auto& [site, count] : per_site) {
    EXPECT_NEAR(count, expected, 0.25 * expected) << "site " << site;
  }
}

TEST(SampleSpace, EncodeDecodeRoundTrip) {
  for (std::uint64_t site : {0ull, 1ull, 999ull}) {
    for (int bit : {0, 1, 31, 63}) {
      const ExperimentId id = encode(site, bit);
      EXPECT_EQ(site_of(id), site);
      EXPECT_EQ(bit_of(id), bit);
      const fi::Injection injection = injection_of(id);
      EXPECT_EQ(injection.site, site);
      EXPECT_EQ(injection.bit, bit);
      EXPECT_EQ(injection.kind, fi::Injection::Kind::kBitFlip);
    }
  }
}

}  // namespace
}  // namespace ftb::campaign
