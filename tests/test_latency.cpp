#include "campaign/latency.h"

#include <gtest/gtest.h>

#include "campaign/sampler.h"
#include "kernels/hazard.h"
#include "kernels/registry.h"
#include "util/rng.h"

namespace ftb::campaign {
namespace {

TEST(CrashSite, RecordedForImmediateNonFiniteInjection) {
  const fi::ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  const std::uint64_t site = 5;
  const fi::ExperimentResult result =
      fi::run_injected(*program, golden,
                       fi::Injection::set_value(
                           site, std::numeric_limits<double>::infinity()));
  ASSERT_EQ(result.outcome, fi::Outcome::kCrash);
  EXPECT_EQ(result.crash_site, site);  // trapped right at the injection
}

TEST(CrashSite, PropagatedCrashTrapsStrictlyLater) {
  // CG divides by dot products: zeroing a value that feeds a divisor
  // produces inf strictly after the injection.
  const fi::ProgramPtr program =
      kernels::make_program("cg", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  bool found_late_crash = false;
  util::Rng rng(17);
  for (int trial = 0; trial < 400 && !found_late_crash; ++trial) {
    const std::uint64_t site = rng.next_below(golden.trace.size());
    const int bit = 52 + static_cast<int>(rng.next_below(11));  // exponent
    const fi::ExperimentResult result = fi::run_injected(
        *program, golden, fi::Injection::bit_flip(site, bit));
    if (result.outcome == fi::Outcome::kCrash &&
        result.crash_site > site) {
      found_late_crash = true;
      EXPECT_LT(result.crash_site, golden.trace.size());
    }
  }
  EXPECT_TRUE(found_late_crash)
      << "expected at least one propagated (non-immediate) crash";
}

TEST(LatencyReport, AggregatesOverSamples) {
  const fi::ProgramPtr program =
      kernels::make_program("cg", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  util::ThreadPool pool(2);

  util::Rng rng(3);
  const std::vector<ExperimentId> ids =
      sample_uniform(rng, golden.sample_space_size(), 1500);
  const LatencyReport report = measure_latency(*program, golden, ids, pool);

  EXPECT_EQ(report.experiments, ids.size());
  EXPECT_GT(report.sdcs, 0u);
  EXPECT_EQ(report.sdc_spread90.count(), report.sdcs);
  // Spread distances are bounded by the remaining execution.
  EXPECT_LT(report.sdc_spread90.max(),
            static_cast<double>(golden.trace.size()));
  EXPECT_GE(report.sdc_spread90.min(), 0.0);
  // Touched fractions are proper fractions.
  EXPECT_GT(report.sdc_touched_fraction.mean(), 0.0);
  EXPECT_LE(report.sdc_touched_fraction.max(), 1.0);
  // Every crash is either charged to crash_latency (valid trap site) or
  // counted as lacking one -- never dropped, never double-counted.
  EXPECT_EQ(report.crash_latency.count() + report.crashes_without_trap_site,
            report.crashes);
  if (report.crash_latency.count() > 0) {
    EXPECT_GE(report.crash_latency.min(), 0.0);
  }
}

TEST(LatencyReport, CrashWithoutTrapSiteIsCountedNotCharged) {
  // Regression: a Crash record with crash_site = 0 (control-flow
  // divergence, sandboxed signal deaths, quarantined experiments) used to
  // feed crash_site - site into crash_latency guarded only by a debug
  // assert; in release builds the subtraction underflowed to ~2^64 and
  // wrecked the latency statistics.
  const fi::ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);

  LatencyReport report;
  ExperimentRecord record;
  record.id = encode(10, 3);
  record.result.outcome = fi::Outcome::kCrash;
  record.result.crash_reason = fi::CrashReason::kControlFlow;
  record.result.crash_site = 0;
  accumulate_latency(report, golden, record, {}, 1e-8);
  EXPECT_EQ(report.crashes, 1u);
  EXPECT_EQ(report.crash_latency.count(), 0u);
  EXPECT_EQ(report.crashes_without_trap_site, 1u);

  // Isolation deaths (sandbox signal kills, quarantine) have no trap
  // site either, whatever crash_site claims.
  record.result.crash_reason = fi::CrashReason::kQuarantined;
  record.result.crash_site = 0;
  accumulate_latency(report, golden, record, {}, 1e-8);
  EXPECT_EQ(report.crashes_without_trap_site, 2u);

  // A genuine non-finite trap downstream of the injection is still charged.
  record.result.crash_reason = fi::CrashReason::kNonFinite;
  record.result.crash_site = 60;
  accumulate_latency(report, golden, record, {}, 1e-8);
  EXPECT_EQ(report.crashes, 3u);
  EXPECT_EQ(report.crash_latency.count(), 1u);
  EXPECT_DOUBLE_EQ(report.crash_latency.max(), 50.0);
  EXPECT_EQ(report.crashes_without_trap_site, 2u);
}

TEST(LatencyReport, ControlFlowCrashEndToEndSkipsLatency) {
  // End to end: a trip-count flip on the hazard kernel is safe in-process
  // but diverges control flow -- Crash with crash_site = 0.  The report
  // must route it to crashes_without_trap_site instead of crash_latency.
  const kernels::HazardProgram program{kernels::HazardConfig{}};
  const fi::GoldenRun golden = fi::run_golden(program);
  ASSERT_DOUBLE_EQ(golden.trace[program.trip_site(0)], 16.0);
  util::ThreadPool pool(2);

  const std::vector<ExperimentId> ids = {encode(program.trip_site(0), 52)};
  const LatencyReport report = measure_latency(program, golden, ids, pool);
  EXPECT_EQ(report.crashes, 1u);
  EXPECT_EQ(report.crash_latency.count(), 0u);
  EXPECT_EQ(report.crashes_without_trap_site, 1u);
}

TEST(LatencyReport, JacobiSpreadsWiderThanDaxpy) {
  // daxpy's elementwise structure propagates each fault to exactly one
  // later site; Jacobi's stencil coupling spreads it across the grid.
  util::ThreadPool pool(2);
  util::Rng rng(9);

  const fi::ProgramPtr daxpy =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const fi::GoldenRun daxpy_golden = fi::run_golden(*daxpy);
  const LatencyReport daxpy_report = measure_latency(
      *daxpy, daxpy_golden,
      sample_uniform(rng, daxpy_golden.sample_space_size(), 400), pool);

  const fi::ProgramPtr jacobi =
      kernels::make_program("jacobi", kernels::Preset::kTiny);
  const fi::GoldenRun jacobi_golden = fi::run_golden(*jacobi);
  const LatencyReport jacobi_report = measure_latency(
      *jacobi, jacobi_golden,
      sample_uniform(rng, jacobi_golden.sample_space_size(), 400), pool);

  EXPECT_GT(jacobi_report.sdc_touched_fraction.mean(),
            daxpy_report.sdc_touched_fraction.mean());
}

}  // namespace
}  // namespace ftb::campaign
