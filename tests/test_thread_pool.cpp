#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ftb::util {
namespace {

TEST(ThreadPool, ParallelForTouchesEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(0, touched.size(),
                    [&](std::size_t i) { touched[i].fetch_add(1); });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForSubrange) {
  ThreadPool pool(3);
  std::vector<int> touched(100, 0);
  pool.parallel_for(10, 20, [&](std::size_t i) { touched[i] = 1; });
  for (std::size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i], (i >= 10 && i < 20) ? 1 : 0) << i;
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  pool.parallel_for(7, 3, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_for(0, 1, [&](std::size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ResultsIndependentOfThreadCount) {
  // The campaign contract: identical output regardless of parallelism.
  const std::size_t n = 500;
  auto run = [n](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(n, 0.0);
    pool.parallel_for(0, n, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5 + 1.0;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(ThreadPool, DefaultPoolSingleton) {
  ThreadPool& a = default_pool();
  ThreadPool& b = default_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1u);
}

TEST(ThreadPool, TaskExceptionRethrownFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The exception is consumed: the pool stays usable afterwards.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, FirstTaskExceptionWins) {
  ThreadPool pool(1);  // serial worker => deterministic throw order
  for (int i = 0; i < 4; ++i) {
    pool.submit([i] { throw std::runtime_error("task " + std::to_string(i)); });
  }
  try {
    pool.wait_idle();
    FAIL() << "wait_idle should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 0");
  }
}

TEST(ThreadPool, ThrowingTaskDoesNotPoisonLaterWork) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::logic_error("first batch"); });
  for (int i = 0; i < 32; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  EXPECT_EQ(ran.load(), 32);  // queue drained despite the throw
  pool.parallel_for(0, 8, [&ran](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 40);
}

TEST(ThreadPool, ManySmallParallelForCalls) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 40, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 40u);
}

}  // namespace
}  // namespace ftb::util
