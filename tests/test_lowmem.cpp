#include "fi/lowmem.h"

#include <vector>

#include <gtest/gtest.h>

#include "boundary/accumulator.h"
#include "campaign/ground_truth.h"
#include "campaign/inference.h"
#include "kernels/registry.h"
#include "util/rng.h"

namespace ftb::fi {
namespace {

struct Prepared {
  explicit Prepared(const char* name)
      : program(kernels::make_program(name, kernels::Preset::kTiny)),
        golden(run_golden(*program)),
        compressed(CompressedGoldenTrace::from(golden)) {}
  ProgramPtr program;
  GoldenRun golden;
  CompressedGoldenTrace compressed;
};

TEST(CompressedGoldenTrace, PreservesMetadata) {
  Prepared p("cg");
  EXPECT_EQ(p.compressed.sites(), p.golden.dynamic_instructions());
  EXPECT_EQ(p.compressed.sample_space_size(), p.golden.sample_space_size());
  EXPECT_EQ(p.compressed.output(), p.golden.output);
  EXPECT_DOUBLE_EQ(p.compressed.tolerance(), p.golden.tolerance);
  EXPECT_GT(p.compressed.compressed_bytes(), 0u);
}

TEST(CompressedGoldenTrace, DecoderReproducesTrace) {
  Prepared p("fft");
  util::GorillaCodec::Decoder cursor = p.compressed.decoder();
  for (double expected : p.golden.trace) {
    ASSERT_TRUE(cursor.has_next());
    EXPECT_EQ(cursor.next(), expected);
  }
  EXPECT_FALSE(cursor.has_next());
}

TEST(CompressedGoldenTrace, ValueAtSpotChecks) {
  Prepared p("stencil2d");
  for (std::uint64_t site : {std::uint64_t{0}, p.compressed.sites() / 2,
                             p.compressed.sites() - 1}) {
    EXPECT_EQ(p.compressed.value_at(site), p.golden.trace[site]);
  }
}

TEST(LowMemExecutor, OutcomesMatchStandardExecutor) {
  Prepared p("cg");
  util::Rng rng(13);
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t site = rng.next_below(p.golden.trace.size());
    const int bit = static_cast<int>(rng.next_below(64));
    const Injection injection = Injection::bit_flip(site, bit);
    const ExperimentResult standard =
        run_injected(*p.program, p.golden, injection);
    const ExperimentResult lowmem =
        run_injected_lowmem(*p.program, p.compressed, injection);
    EXPECT_EQ(standard.outcome, lowmem.outcome) << site << ":" << bit;
    EXPECT_DOUBLE_EQ(standard.injected_error, lowmem.injected_error);
    EXPECT_DOUBLE_EQ(standard.output_error, lowmem.output_error);
  }
}

TEST(LowMemExecutor, StreamedDiffsMatchBufferedDiffs) {
  Prepared p("lu");
  std::vector<double> buffered(p.golden.trace.size());
  const Injection injection =
      Injection::bit_flip(p.golden.trace.size() / 3, 44);

  const ExperimentResult standard =
      run_injected_compare(*p.program, p.golden, injection, buffered);

  std::vector<double> streamed(p.golden.trace.size(), 0.0);
  const ExperimentResult lowmem = run_injected_compare_lowmem(
      *p.program, p.compressed, injection,
      [&](std::uint64_t site, double error) { streamed[site] = error; });

  EXPECT_EQ(standard.outcome, lowmem.outcome);
  for (std::size_t i = 0; i < buffered.size(); ++i) {
    EXPECT_DOUBLE_EQ(buffered[i], streamed[i]) << i;
  }
}

TEST(LowMemExecutor, CrashRunsClassifyIdentically) {
  Prepared p("cg");
  // Force a crash: overwrite a divisor-adjacent value with NaN.
  const Injection injection = Injection::set_value(
      p.golden.trace.size() / 2, std::numeric_limits<double>::quiet_NaN());
  const ExperimentResult standard =
      run_injected(*p.program, p.golden, injection);
  const ExperimentResult lowmem = run_injected_compare_lowmem(
      *p.program, p.compressed, injection, nullptr);
  EXPECT_EQ(standard.outcome, Outcome::kCrash);
  EXPECT_EQ(lowmem.outcome, Outcome::kCrash);
}

TEST(LowMemPipeline, BoundaryMatchesStandardPipeline) {
  // Two-pass low-memory boundary construction must produce the *same*
  // thresholds as the standard buffered pipeline for the same samples.
  Prepared p("stencil2d");
  util::ThreadPool pool(1);

  campaign::InferenceOptions options;
  options.sample_fraction = 0.03;
  options.seed = 11;
  options.filter = true;
  const campaign::InferenceResult standard =
      campaign::infer_uniform(*p.program, p.golden, options, pool);

  boundary::BoundaryAccumulator accumulator(
      p.golden.trace.size(), {options.filter, options.prop_buffer_cap});
  for (const campaign::ExperimentId id : standard.sampled_ids) {
    const Injection injection = campaign::injection_of(id);
    const ExperimentResult outcome_pass =
        run_injected_lowmem(*p.program, p.compressed, injection);
    accumulator.record_injection(campaign::site_of(id), campaign::bit_of(id),
                                 outcome_pass.outcome,
                                 outcome_pass.injected_error);
    if (outcome_pass.outcome == Outcome::kMasked) {
      (void)run_injected_compare_lowmem(
          *p.program, p.compressed, injection,
          [&](std::uint64_t site, double error) {
            accumulator.record_masked_value(site, error);
          });
    }
  }
  const boundary::FaultToleranceBoundary lowmem_boundary =
      accumulator.finalize();
  ASSERT_EQ(lowmem_boundary.sites(), standard.boundary.sites());
  for (std::size_t i = 0; i < lowmem_boundary.sites(); ++i) {
    EXPECT_DOUBLE_EQ(lowmem_boundary.threshold(i),
                     standard.boundary.threshold(i))
        << i;
  }
}

}  // namespace
}  // namespace ftb::fi
