#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/complexv.h"
#include "linalg/csr.h"
#include "linalg/dense.h"
#include "util/rng.h"

namespace ftb::linalg {
namespace {

TEST(Dense, ConstructionAndAccess) {
  DenseMatrix a(2, 3, 1.5);
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.cols(), 3u);
  EXPECT_DOUBLE_EQ(a.at(1, 2), 1.5);
  a.at(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(a.row(0)[1], -2.0);
}

TEST(Dense, IdentityMultiply) {
  util::Rng rng(1);
  const DenseMatrix a = DenseMatrix::random_uniform(4, 4, rng);
  const DenseMatrix product = multiply(a, DenseMatrix::identity(4));
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(product.at(i, j), a.at(i, j));
    }
  }
}

TEST(Dense, MatvecAgainstManual) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 3.0;
  a.at(1, 1) = 4.0;
  const std::vector<double> x = {5.0, 6.0};
  const std::vector<double> y = matvec(a, x);
  EXPECT_DOUBLE_EQ(y[0], 17.0);
  EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(Dense, DiagonallyDominantIsDominant) {
  util::Rng rng(9);
  const DenseMatrix a = DenseMatrix::random_diagonally_dominant(12, rng);
  for (std::size_t r = 0; r < 12; ++r) {
    double off = 0.0;
    for (std::size_t c = 0; c < 12; ++c) {
      if (c != r) off += std::fabs(a.at(r, c));
    }
    EXPECT_GT(a.at(r, r), off) << "row " << r;
  }
}

class LuReferenceSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuReferenceSweep, FactorReconstructs) {
  const std::size_t n = GetParam();
  util::Rng rng(n);
  const DenseMatrix a = DenseMatrix::random_diagonally_dominant(n, rng);
  const DenseMatrix lu = lu_factor_reference(a);
  const DenseMatrix back = lu_reconstruct(lu);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      worst = std::fmax(worst, std::fabs(back.at(i, j) - a.at(i, j)));
    }
  }
  EXPECT_LT(worst, 1e-10 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuReferenceSweep,
                         ::testing::Values(1u, 2u, 3u, 8u, 16u, 24u));

TEST(VectorOps, NormsAndDot) {
  const std::vector<double> a = {3.0, 4.0};
  const std::vector<double> b = {1.0, -1.0};
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(dot(a, b), -1.0);
  EXPECT_DOUBLE_EQ(linf_distance(a, b), 5.0);
}

TEST(Csr, Poisson5Structure) {
  const CsrMatrix a = CsrMatrix::poisson5(3, 3);
  EXPECT_EQ(a.rows(), 9u);
  EXPECT_EQ(a.cols(), 9u);
  // nnz = 5*interior + edges: 9 diag + 2*(horizontal links 6 + vertical 6).
  EXPECT_EQ(a.nonzeros(), 9u + 2u * 12u);
  EXPECT_TRUE(a.is_symmetric());
}

TEST(Csr, Poisson5MatchesDenseLaplacian) {
  const std::size_t nx = 4, ny = 3, n = nx * ny;
  const CsrMatrix sparse = CsrMatrix::poisson5(nx, ny);
  // Build the same operator densely.
  DenseMatrix dense(n, n);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const std::size_t row = iy * nx + ix;
      dense.at(row, row) = 4.0;
      if (ix > 0) dense.at(row, row - 1) = -1.0;
      if (ix + 1 < nx) dense.at(row, row + 1) = -1.0;
      if (iy > 0) dense.at(row, row - nx) = -1.0;
      if (iy + 1 < ny) dense.at(row, row + nx) = -1.0;
    }
  }
  util::Rng rng(3);
  std::vector<double> x(n);
  for (double& v : x) v = rng.next_double(-1.0, 1.0);
  const std::vector<double> ys = sparse.multiply(x);
  const std::vector<double> yd = matvec(dense, x);
  EXPECT_LT(linf_distance(ys, yd), 1e-14);
}

TEST(Csr, Poisson5IsPositiveDefiniteish) {
  // x' A x > 0 for a handful of random nonzero x (Dirichlet Laplacian).
  const CsrMatrix a = CsrMatrix::poisson5(5, 5);
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> x(a.rows());
    for (double& v : x) v = rng.next_double(-1.0, 1.0);
    const std::vector<double> ax = a.multiply(x);
    EXPECT_GT(dot(x, ax), 0.0);
  }
}

TEST(ComplexVec, Interleaved) {
  ComplexVec v(2);
  v.re = {1.0, 3.0};
  v.im = {2.0, 4.0};
  EXPECT_EQ(v.interleaved(), (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(Dft, DeltaHasFlatSpectrum) {
  ComplexVec input(8);
  input.re[0] = 1.0;
  const ComplexVec spectrum = dft_reference(input);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(spectrum.re[k], 1.0, 1e-12);
    EXPECT_NEAR(spectrum.im[k], 0.0, 1e-12);
  }
}

TEST(Dft, ConstantConcentratesAtZero) {
  ComplexVec input(8);
  for (double& v : input.re) v = 1.0;
  const ComplexVec spectrum = dft_reference(input);
  EXPECT_NEAR(spectrum.re[0], 8.0, 1e-12);
  for (std::size_t k = 1; k < 8; ++k) {
    EXPECT_NEAR(std::hypot(spectrum.re[k], spectrum.im[k]), 0.0, 1e-12);
  }
}

TEST(Dft, SingleToneLandsInItsBin) {
  const std::size_t n = 16;
  ComplexVec input(n);
  const std::size_t tone = 3;
  for (std::size_t j = 0; j < n; ++j) {
    const double angle = 2.0 * std::numbers::pi *
                         static_cast<double>(tone * j) / static_cast<double>(n);
    input.re[j] = std::cos(angle);
    input.im[j] = std::sin(angle);
  }
  const ComplexVec spectrum = dft_reference(input);
  for (std::size_t k = 0; k < n; ++k) {
    const double magnitude = std::hypot(spectrum.re[k], spectrum.im[k]);
    if (k == tone) {
      EXPECT_NEAR(magnitude, static_cast<double>(n), 1e-10);
    } else {
      EXPECT_NEAR(magnitude, 0.0, 1e-10);
    }
  }
}

}  // namespace
}  // namespace ftb::linalg
