#include "util/gorilla.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "fi/executor.h"
#include "kernels/registry.h"
#include "util/rng.h"

namespace ftb::util {
namespace {

TEST(BitIo, RoundTripAssortedWidths) {
  BitWriter writer;
  writer.put(0b101, 3);
  writer.put(0xdeadbeef, 32);
  writer.put(1, 1);
  writer.put(0x0123456789abcdefull, 64);
  writer.put(0, 7);
  const std::vector<std::uint8_t> bytes = writer.finish();

  BitReader reader(bytes);
  EXPECT_EQ(reader.get(3), 0b101u);
  EXPECT_EQ(reader.get(32), 0xdeadbeefu);
  EXPECT_EQ(reader.get(1), 1u);
  EXPECT_EQ(reader.get(64), 0x0123456789abcdefull);
  EXPECT_EQ(reader.get(7), 0u);
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter writer;
  writer.put(0xff, 8);
  const std::vector<std::uint8_t> bytes = writer.finish();
  BitReader reader(bytes);
  (void)reader.get(8);
  EXPECT_THROW(reader.get(1), std::runtime_error);
}

void expect_round_trip(const std::vector<double>& values) {
  const std::vector<std::uint8_t> compressed = GorillaCodec::compress(values);
  const std::vector<double> restored =
      GorillaCodec::decompress(compressed, values.size());
  ASSERT_EQ(restored.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Bitwise equality, including signed zeros and non-finite values.
    EXPECT_EQ(std::memcmp(&restored[i], &values[i], sizeof(double)), 0) << i;
  }
}

TEST(Gorilla, EmptyAndSingle) {
  expect_round_trip({});
  expect_round_trip({3.14159});
}

TEST(Gorilla, ConstantRuns) { expect_round_trip(std::vector<double>(100, 7.5)); }

TEST(Gorilla, SmoothSeries) {
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(1.0 + 1e-6 * i);
  }
  expect_round_trip(values);
  // Smooth series must compress below 64 bits/value (XOR residuals only
  // touch low mantissa bits most steps).
  const auto compressed = GorillaCodec::compress(values);
  EXPECT_LT(compressed.size() * 8, values.size() * 48);
}

TEST(Gorilla, RandomSeries) {
  Rng rng(5);
  std::vector<double> values(1000);
  for (double& v : values) v = rng.next_double(-1e6, 1e6);
  expect_round_trip(values);
}

TEST(Gorilla, SpecialValues) {
  expect_round_trip({0.0, -0.0, 1.0, -1.0,
                     std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::denorm_min(),
                     std::numeric_limits<double>::max()});
}

TEST(Gorilla, DecoderIsSequentialAndBounded) {
  const std::vector<double> values = {1.0, 2.0, 3.0};
  const auto compressed = GorillaCodec::compress(values);
  GorillaCodec::Decoder decoder(compressed, values.size());
  EXPECT_TRUE(decoder.has_next());
  EXPECT_DOUBLE_EQ(decoder.next(), 1.0);
  EXPECT_DOUBLE_EQ(decoder.next(), 2.0);
  EXPECT_DOUBLE_EQ(decoder.next(), 3.0);
  EXPECT_FALSE(decoder.has_next());
  EXPECT_THROW(decoder.next(), std::runtime_error);
}

TEST(Gorilla, GoldenTracesRoundTripWithBoundedSize) {
  // The paper's Overhead concern: golden traces are big.  Structured traces
  // (CG's zero-init runs and repeated iterates) compress; high-entropy ones
  // (LU/FFT random fills) may expand, but never by more than the two
  // control bits per value (~ 3.2%).
  for (const char* name : {"cg", "lu", "fft", "jacobi", "stencil2d"}) {
    const fi::ProgramPtr program =
        kernels::make_program(name, kernels::Preset::kTiny);
    const fi::GoldenRun golden = fi::run_golden(*program);
    const auto compressed = GorillaCodec::compress(golden.trace);
    expect_round_trip(golden.trace);
    const double ratio = static_cast<double>(compressed.size()) /
                         static_cast<double>(golden.trace.size() * 8);
    EXPECT_LT(ratio, 1.04) << name;
  }
  // CG specifically must compress: its trace starts with long zero runs.
  const fi::ProgramPtr cg = kernels::make_program("cg", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*cg);
  EXPECT_LT(GorillaCodec::compress(golden.trace).size(),
            golden.trace.size() * 8);
}

TEST(Gorilla, CorruptHeaderThrowsNotCrashes) {
  const std::vector<double> values = {1.0, 1.5, 2.25, -8.0};
  auto compressed = GorillaCodec::compress(values);
  // Flip bits across the buffer; decoding must either succeed or throw.
  for (std::size_t byte = 0; byte < compressed.size(); ++byte) {
    auto mutated = compressed;
    mutated[byte] ^= 0xff;
    try {
      (void)GorillaCodec::decompress(mutated, values.size());
    } catch (const std::runtime_error&) {
      // acceptable
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace ftb::util
