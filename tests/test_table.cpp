#include "util/table.h"

#include <gtest/gtest.h>

namespace ftb::util {
namespace {

TEST(Table, RenderAlignsColumns) {
  Table table({"Name", "SDC"});
  table.add_row({"cg", "8.2%"});
  table.add_row({"lu-long-name", "35.89%"});
  const std::string text = table.render("Table 1");
  EXPECT_NE(text.find("Table 1"), std::string::npos);
  EXPECT_NE(text.find("| cg"), std::string::npos);
  EXPECT_NE(text.find("lu-long-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("|--"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.columns(), 2u);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table table({"a", "b"});
  table.add_row({"plain", "with,comma"});
  table.add_row({"with\"quote", "multi\nline"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("a,b\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
}

TEST(Format, Printf) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
}

TEST(Percent, Formats) {
  EXPECT_EQ(percent(0.082), "8.20%");
  EXPECT_EQ(percent(0.3589, 1), "35.9%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace ftb::util
