#include "util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ftb::util {
namespace {

TEST(RunningStats, MatchesClosedForm) {
  RunningStats rs;
  const std::vector<double> data = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double v : data) rs.add(v);
  EXPECT_EQ(rs.count(), data.size());
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(3.5);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

class RunningStatsMerge : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RunningStatsMerge, MergeEqualsSequential) {
  // Property: splitting a stream at any point and merging gives the same
  // moments as processing it sequentially.
  Rng rng(77);
  std::vector<double> data(200);
  for (double& v : data) v = rng.next_double(-10.0, 10.0);

  RunningStats sequential;
  for (double v : data) sequential.add(v);

  const std::size_t split = GetParam();
  RunningStats left, right;
  for (std::size_t i = 0; i < split; ++i) left.add(data[i]);
  for (std::size_t i = split; i < data.size(); ++i) right.add(data[i]);
  left.merge(right);

  EXPECT_EQ(left.count(), sequential.count());
  EXPECT_NEAR(left.mean(), sequential.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), sequential.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), sequential.min());
  EXPECT_DOUBLE_EQ(left.max(), sequential.max());
}

INSTANTIATE_TEST_SUITE_P(SplitPoints, RunningStatsMerge,
                         ::testing::Values(0u, 1u, 50u, 100u, 199u, 200u));

TEST(MeanStd, Basics) {
  const std::vector<double> data = {1.0, 2.0, 3.0};
  const MeanStd ms = mean_std(data);
  EXPECT_DOUBLE_EQ(ms.mean, 2.0);
  EXPECT_NEAR(ms.stddev, 1.0, 1e-12);
}

TEST(FormatPercentPm, Renders) {
  EXPECT_EQ(format_percent_pm({0.9864, 0.002}), "98.64% +- 0.20%");
  EXPECT_EQ(format_percent_pm({1.0, 0.0}, 1), "100.0% +- 0.0%");
}

TEST(Confusion, PrecisionRecall) {
  Confusion c;
  c.true_positive = 90;
  c.false_positive = 10;
  c.false_negative = 30;
  c.true_negative = 70;
  EXPECT_DOUBLE_EQ(c.precision(), 0.9);
  EXPECT_DOUBLE_EQ(c.recall(), 0.75);
  EXPECT_EQ(c.total(), 200u);
}

TEST(Confusion, VacuousCases) {
  Confusion none;
  EXPECT_DOUBLE_EQ(none.precision(), 1.0);  // nothing predicted positive
  EXPECT_DOUBLE_EQ(none.recall(), 1.0);     // nothing actually positive
}

TEST(Confusion, Accumulate) {
  Confusion a, b;
  a.true_positive = 1;
  b.true_positive = 2;
  b.false_negative = 3;
  a += b;
  EXPECT_EQ(a.true_positive, 3u);
  EXPECT_EQ(a.false_negative, 3u);
}

TEST(Pearson, PerfectCorrelations) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  std::vector<double> neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(x, neg), -1.0, 1e-12);
  const std::vector<double> flat = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, flat), 0.0);  // zero variance
}

TEST(MeanAbsoluteError, Basics) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {2.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(mean_absolute_error(a, b), 1.0);
}

TEST(GroupMeans, GroupsAndRemainder) {
  const std::vector<double> data = {1.0, 3.0, 5.0, 7.0, 9.0};
  const std::vector<double> grouped = group_means(data, 2);
  ASSERT_EQ(grouped.size(), 3u);
  EXPECT_DOUBLE_EQ(grouped[0], 2.0);
  EXPECT_DOUBLE_EQ(grouped[1], 6.0);
  EXPECT_DOUBLE_EQ(grouped[2], 9.0);  // remainder group of one
}

TEST(GroupMeans, GroupLargerThanData) {
  const std::vector<double> data = {4.0, 6.0};
  const std::vector<double> grouped = group_means(data, 10);
  ASSERT_EQ(grouped.size(), 1u);
  EXPECT_DOUBLE_EQ(grouped[0], 5.0);
}


TEST(WilsonInterval, ContainsPointEstimate) {
  const Interval ci = wilson_interval(82, 1000);
  EXPECT_TRUE(ci.contains(0.082));
  EXPECT_GT(ci.lo, 0.06);
  EXPECT_LT(ci.hi, 0.11);
}

TEST(WilsonInterval, NarrowsWithSampleSize) {
  const Interval small = wilson_interval(10, 100);
  const Interval large = wilson_interval(1000, 10000);
  EXPECT_LT(large.width(), small.width());
}

TEST(WilsonInterval, EdgeProportions) {
  const Interval zero = wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);   // zero observed successes still allow p > 0
  EXPECT_LT(zero.hi, 0.15);
  const Interval all = wilson_interval(50, 50);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_GT(all.lo, 0.85);
  const Interval empty = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 1.0);
}

TEST(WilsonInterval, HigherConfidenceIsWider) {
  const Interval z95 = wilson_interval(30, 200, 1.96);
  const Interval z99 = wilson_interval(30, 200, 2.576);
  EXPECT_LT(z95.width(), z99.width());
  EXPECT_LE(z99.lo, z95.lo);
  EXPECT_GE(z99.hi, z95.hi);
}

}  // namespace
}  // namespace ftb::util
