// Crash-recovery tests for the job plane: a drained (or killed) service
// incarnation leaves acked-but-unfinished jobs in the ledger; the next
// incarnation must replay them, resume their journals, finish the work,
// and publish the boundary -- without the client resubmitting anything.
// Also pins the refuse-to-ack contract when the ledger itself is broken.
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "service/ledger.h"
#include "service/service.h"
#include "telemetry/events.h"

namespace ftb::service {
namespace {

namespace fs = std::filesystem;

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!net::net_supported()) GTEST_SKIP() << "no socket support";
    dir_ = fs::temp_directory_path() /
           ("ftb_recovery_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    stop();
    fs::remove_all(dir_);
  }

  void start() {
    ServiceOptions options;
    options.store_dir = dir_.string();
    options.telemetry = &telemetry_;
    telemetry_.set_enabled(true);
    service_ = std::make_unique<Service>(options);
    net::ServerOptions server_options;
    server_options.telemetry = &telemetry_;
    server_ = std::make_unique<net::Server>(*service_, server_options);
    service_->attach(server_.get());
    loop_ = std::thread([this] { server_->run(); });
  }

  void stop() {
    if (server_ == nullptr) return;
    service_->request_shutdown();
    if (loop_.joinable()) loop_.join();
    server_.reset();
    service_.reset();
  }

  telemetry::Telemetry telemetry_;
  std::unique_ptr<Service> service_;
  std::unique_ptr<net::Server> server_;
  std::thread loop_;
  fs::path dir_;
};

TEST_F(RecoveryTest, InterruptedJobResumesInTheNextIncarnationAndPublishes) {
  // Incarnation one: submit, then drain at the first checkpoint so the job
  // is acked, journalled, and NOT finished.
  start();
  {
    net::ClientOptions copts;
    copts.port = server_->port();
    net::Client client(copts);
    SubmitCampaignReq req;
    req.kernel = "daxpy";
    req.preset = "tiny";
    req.seed = 1;
    req.batch = 2000;
    req.workers = 1;
    req.flush_every = 50;
    std::string error;
    ASSERT_TRUE(client.connect(&error)) << error;
    ASSERT_TRUE(client.send(make_submit_campaign(req), &error)) << error;
    const auto accepted_frame = client.recv(&error, 60000);
    ASSERT_TRUE(accepted_frame.has_value()) << error;
    ASSERT_TRUE(parse_campaign_accepted(*accepted_frame).has_value());
    // First progress frame == first durable checkpoint; drain now.
    const auto progress_frame = client.recv(&error, 120000);
    ASSERT_TRUE(progress_frame.has_value()) << error;
    service_->request_shutdown();
  }
  stop();

  // The ledger knows about the interrupted job; the journal is on disk.
  const std::string ledger_path = (dir_ / "jobs.ledger").string();
  const auto between = JobLedger::replay_file(ledger_path);
  if (between.pending.empty()) {
    GTEST_SKIP() << "job finished before the drain hit a chunk edge";
  }
  ASSERT_EQ(between.pending.size(), 1u);
  EXPECT_EQ(between.pending[0].req.kernel, "daxpy");
  ASSERT_TRUE(fs::exists(dir_ / "daxpy@tiny@1.clog"));
  ASSERT_FALSE(fs::exists(dir_ / "daxpy@tiny@1.boundary"));

  // Incarnation two: the constructor replays the ledger and re-enqueues;
  // the job resumes from the journal and publishes without any client.
  start();
  EXPECT_EQ(service_->jobs().replay().pending.size(), 1u);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (service_->store().find("daxpy@tiny@1") == nullptr) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "recovered job did not publish in time";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(fs::exists(dir_ / "daxpy@tiny@1.boundary"));
  stop();

  // After the graceful stop, nothing is pending any more.
  const auto after = JobLedger::replay_file(ledger_path);
  EXPECT_TRUE(after.pending.empty());
}

// "fsync-before-ack" has a contrapositive: when the ledger cannot be
// written at all, the server must refuse the submission rather than ack
// work it would forget in a crash.
TEST_F(RecoveryTest, UnwritableLedgerRefusesSubmissionsButServesQueries) {
  // A directory squatting on the ledger path makes open() fail.
  fs::create_directories(dir_ / "jobs.ledger");
  start();
  EXPECT_FALSE(service_->jobs().ledger_ok());

  net::ClientOptions copts;
  copts.port = server_->port();
  net::Client client(copts);
  std::string error;

  // The query plane is unaffected.
  const auto pong = client.call(make_ping(), &error);
  ASSERT_TRUE(pong.has_value()) << error;
  EXPECT_EQ(pong->type, static_cast<std::uint32_t>(MsgType::kPong));

  // Submissions are refused with a hard Error (not Busy: retrying will not
  // help until an operator fixes the store).
  SubmitCampaignReq req;
  req.kernel = "daxpy";
  const auto reply = client.call(make_submit_campaign(req), &error);
  ASSERT_TRUE(reply.has_value()) << error;
  const auto err = parse_error(*reply, &error);
  ASSERT_TRUE(err.has_value()) << "want Error, got type " << reply->type;
  EXPECT_NE(err->message.find("ledger"), std::string::npos);
}

}  // namespace
}  // namespace ftb::service
