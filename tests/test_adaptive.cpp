#include "campaign/adaptive.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "boundary/metrics.h"
#include "boundary/predictor.h"
#include "boundary/serialize.h"
#include "campaign/ground_truth.h"
#include "campaign/log.h"
#include "kernels/registry.h"

namespace ftb::campaign {
namespace {

struct Prepared {
  explicit Prepared(const std::string& name)
      : program(kernels::make_program(name, kernels::Preset::kTiny)),
        golden(fi::run_golden(*program)),
        pool(2) {}
  fi::ProgramPtr program;
  fi::GoldenRun golden;
  util::ThreadPool pool;
};

AdaptiveOptions fast_options() {
  AdaptiveOptions options;
  options.round_fraction = 0.005;
  options.min_round_samples = 16;
  options.seed = 5;
  return options;
}

TEST(Adaptive, TerminatesAndStaysWithinSpace) {
  Prepared p("stencil2d");
  const AdaptiveResult result =
      infer_adaptive(*p.program, p.golden, fast_options(), p.pool);
  EXPECT_GT(result.rounds.size(), 0u);
  EXPECT_LE(result.sampled_ids.size(), result.space);
  EXPECT_GT(result.sampled_ids.size(), 0u);
  EXPECT_LE(result.sample_fraction(), 1.0);
  EXPECT_EQ(result.records.size(), result.sampled_ids.size());
}

TEST(Adaptive, SupervisedSurvivesHazardKernel) {
  // With use_supervisor, adaptive inference survives a kernel whose flips
  // segfault, trap, or spin -- running this in-process would kill or hang
  // the test binary.  The supervisor persists across rounds, so a lethal
  // site quarantined in an early round stays quarantined later.
  const fi::ProgramPtr program =
      kernels::make_program("hazard", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  util::ThreadPool pool(2);

  AdaptiveOptions options;
  options.round_fraction = 0.02;
  options.min_round_samples = 32;
  options.seed = 5;
  options.use_supervisor = true;
  options.supervisor.pool.workers = 2;
  options.supervisor.quarantine_after = 2;
  options.supervisor.pool.heartbeat_timeout_ms = 300;
  const AdaptiveResult result =
      infer_adaptive(*program, golden, options, pool);

  EXPECT_GT(result.rounds.size(), 0u);
  EXPECT_EQ(result.records.size(), result.sampled_ids.size());
  // Still alive: every sampled experiment got exactly one record, and any
  // lethal flip the sampler found ended up quarantined, not fatal.
  EXPECT_EQ(result.supervisor_stats.quarantined,
            static_cast<std::uint64_t>(
                std::count_if(result.records.begin(), result.records.end(),
                              [](const ExperimentRecord& r) {
                                return r.result.crash_reason ==
                                       fi::CrashReason::kQuarantined;
                              })));
}

TEST(Adaptive, NeverRetestsAnExperiment) {
  Prepared p("daxpy");
  const AdaptiveResult result =
      infer_adaptive(*p.program, p.golden, fast_options(), p.pool);
  const std::set<ExperimentId> unique(result.sampled_ids.begin(),
                                      result.sampled_ids.end());
  EXPECT_EQ(unique.size(), result.sampled_ids.size());
}

TEST(Adaptive, CandidatePoolShrinksMonotonically) {
  Prepared p("stencil2d");
  const AdaptiveResult result =
      infer_adaptive(*p.program, p.golden, fast_options(), p.pool);
  for (std::size_t r = 1; r < result.rounds.size(); ++r) {
    EXPECT_LT(result.rounds[r].candidates_before,
              result.rounds[r - 1].candidates_before)
        << "round " << r;
  }
}

TEST(Adaptive, DeterministicForSeed) {
  Prepared p("daxpy");
  const AdaptiveResult a =
      infer_adaptive(*p.program, p.golden, fast_options(), p.pool);
  const AdaptiveResult b =
      infer_adaptive(*p.program, p.golden, fast_options(), p.pool);
  EXPECT_EQ(a.sampled_ids, b.sampled_ids);
  EXPECT_EQ(a.rounds.size(), b.rounds.size());
}

TEST(Adaptive, UsesFarFewerSamplesThanExhaustive) {
  Prepared p("stencil2d");
  const AdaptiveResult result =
      infer_adaptive(*p.program, p.golden, fast_options(), p.pool);
  EXPECT_LT(result.sample_fraction(), 0.6);
}

TEST(Adaptive, PredictedSdcTracksGroundTruth) {
  Prepared p("stencil2d");
  const GroundTruth truth =
      GroundTruth::compute(*p.program, p.golden, p.pool, /*use_cache=*/false);
  const AdaptiveResult result =
      infer_adaptive(*p.program, p.golden, fast_options(), p.pool);
  const double predicted =
      boundary::predicted_overall_sdc(result.boundary, p.golden.trace);
  // The boundary assumes unknown = SDC, so predicted >= truth - noise, and
  // after adaptive refinement it should be within a handful of points.
  EXPECT_NEAR(predicted, truth.overall_sdc_ratio(), 0.15);
}

TEST(Adaptive, StopCriterionRespectsMaskedShare) {
  // With stop_sdc_fraction = 0 every round stops immediately after round 1
  // (any masked share <= 1 satisfies the criterion).
  Prepared p("daxpy");
  AdaptiveOptions options = fast_options();
  options.stop_sdc_fraction = 0.0;
  const AdaptiveResult result =
      infer_adaptive(*p.program, p.golden, options, p.pool);
  EXPECT_EQ(result.rounds.size(), 1u);
}

TEST(Adaptive, StopRuleCountsSilentOutcomesOnly) {
  // Section 3.4's "95% of the new samples are SDC" speaks about the
  // masked/SDC split; crashes and hangs are detectable outcomes and must
  // not dilute the denominator.  The old rule counted them, so a
  // crash-heavy round could end sampling while the masked share among
  // silent outcomes was still high.
  OutcomeCounts counts;
  counts.masked = 20;
  counts.sdc = 80;
  counts.crash = 900;  // would have pushed masked share to 0.02 under the
  counts.hang = 10;    // old total()-based denominator -> premature stop
  EXPECT_FALSE(adaptive_should_stop(counts, 0.95));  // 20/100 = 0.2 > 0.05

  OutcomeCounts mostly_sdc;
  mostly_sdc.masked = 5;
  mostly_sdc.sdc = 95;
  EXPECT_TRUE(adaptive_should_stop(mostly_sdc, 0.95));  // 0.05 <= 0.05

  OutcomeCounts detectable_only;
  detectable_only.crash = 50;
  detectable_only.hang = 3;
  // No silent evidence at all: the round says nothing about the masked
  // space, so sampling must continue.
  EXPECT_FALSE(adaptive_should_stop(detectable_only, 0.95));

  OutcomeCounts all_masked;
  all_masked.masked = 10;
  EXPECT_FALSE(adaptive_should_stop(all_masked, 0.95));  // share 1 > 0.05
  EXPECT_TRUE(adaptive_should_stop(all_masked, 0.0));    // 1 <= 1
}

TEST(Adaptive, SnapshotRoundsAreByteIdenticalToClassicSupervisor) {
  // ftb_analyze infer --adaptive --snapshot serves each refinement round
  // from the copy-on-write fork-server inside the pool workers.  Checkpoint
  // placement is a speed knob only: the sampled ids, every record, and the
  // final boundary must be byte-identical to the classic supervisor path.
  Prepared p("daxpy");
  AdaptiveOptions options = fast_options();
  options.use_supervisor = true;
  options.supervisor.pool.workers = 2;

  AdaptiveOptions snapshot_options = options;
  snapshot_options.supervisor.pool.use_snapshots = true;
  snapshot_options.supervisor.pool.snapshot.interval = 64;

  const AdaptiveResult classic =
      infer_adaptive(*p.program, p.golden, options, p.pool);
  const AdaptiveResult snapshot =
      infer_adaptive(*p.program, p.golden, snapshot_options, p.pool);

  EXPECT_EQ(classic.sampled_ids, snapshot.sampled_ids);
  ASSERT_EQ(classic.records.size(), snapshot.records.size());

  // Journal byte-identity: the same records serialize to the same log.
  CampaignLog classic_log(p.program->config_key());
  classic_log.append(classic.records);
  CampaignLog snapshot_log(p.program->config_key());
  snapshot_log.append(snapshot.records);
  EXPECT_EQ(classic_log.serialize(), snapshot_log.serialize());

  // Boundary byte-identity, artifact framing included.
  EXPECT_EQ(
      boundary::serialize(classic.boundary, p.program->config_key()),
      boundary::serialize(snapshot.boundary, p.program->config_key()));
}

TEST(Adaptive, MaxRoundsBounds) {
  Prepared p("stencil2d");
  AdaptiveOptions options = fast_options();
  options.max_rounds = 2;
  options.stop_sdc_fraction = 1.1;  // never satisfied -> rely on max_rounds
  const AdaptiveResult result =
      infer_adaptive(*p.program, p.golden, options, p.pool);
  EXPECT_LE(result.rounds.size(), 2u);
}

}  // namespace
}  // namespace ftb::campaign
