// Deterministic threaded tracing: sharded tracers reproduce the serial
// dynamic-instruction numbering, crashes land on the minimum site exactly as
// the serial interleaving would, and the threaded kernel variants produce
// byte-identical traces, injected runs, and inference results across reruns.
#include "kernels/parallel.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/inference.h"
#include "campaign/sample_space.h"
#include "fi/executor.h"
#include "fi/tracer.h"
#include "kernels/registry.h"
#include "util/thread_pool.h"

namespace ftb {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(SplitRanges, ContiguousNearEqualPartition) {
  for (const std::size_t count : {0u, 1u, 7u, 64u, 65u}) {
    for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
      const auto ranges = kernels::split_ranges(count, threads);
      ASSERT_EQ(ranges.size(), threads);
      std::size_t expected_begin = 0;
      for (const auto& [begin, end] : ranges) {
        EXPECT_EQ(begin, expected_begin);
        EXPECT_GE(end, begin);
        // Near-equal: every range holds floor or ceil of count/threads.
        EXPECT_LE(end - begin, count / threads + 1);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, count);
    }
  }
}

TEST(TracerShard, JoinThrowsTheMinimumCrashSite) {
  // Two shards, both hitting a non-finite value after the injection fired:
  // shard 0 at global index 3, shard 1 at global index 6.  The serial
  // interleaving would trap at 3 first, so join() must throw exactly that,
  // regardless of which thread "finished" first.
  fi::Tracer tracer = fi::Tracer::injector(fi::Injection::bit_flip(1, 52));
  std::vector<fi::Tracer::Shard> shards;
  shards.push_back(tracer.shard(5));  // global indices 0..4
  shards.push_back(tracer.shard(5));  // global indices 5..9
  EXPECT_EQ(tracer.steps(), 10u);

  // Shard 1 runs to completion *before* shard 0 ever sees its NaN.
  shards[1].step(1.0);
  shards[1].step(kNan);  // global index 6
  for (int i = 0; i < 3; ++i) shards[1].step(1.0);

  shards[0].step(1.0);
  shards[0].step(1.0);  // global index 1: injection fires (bit 52 -> 0.5)
  shards[0].step(1.0);
  shards[0].step(kNan);  // global index 3
  shards[0].step(1.0);

  try {
    tracer.join(shards);
    FAIL() << "join() must throw CrashSignal";
  } catch (const fi::CrashSignal& signal) {
    EXPECT_EQ(signal.site, 3u);
  }
  EXPECT_TRUE(tracer.fired());
  EXPECT_DOUBLE_EQ(tracer.injected_error(), 0.5);  // |0.5 - 1.0|
}

TEST(TracerShard, RecordModeMergesInShardOrder) {
  std::vector<double> trace;
  fi::Tracer tracer = fi::Tracer::recorder(trace);
  std::vector<fi::Tracer::Shard> shards;
  shards.push_back(tracer.shard(2));
  shards.push_back(tracer.shard(3));
  // Run the shards "out of order"; the merged trace must still follow the
  // pre-assigned global numbering.
  shards[1].step(30.0);
  shards[1].step(40.0);
  shards[1].step(50.0);
  shards[0].step(10.0);
  shards[0].step(20.0);
  tracer.join(shards);
  EXPECT_EQ(trace, (std::vector<double>{10.0, 20.0, 30.0, 40.0, 50.0}));
}

TEST(ReducedParallelSum, FoldsInThreadOrder) {
  std::vector<double> values(101);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  const auto term = [&](std::size_t i) { return values[i]; };
  double serial = 0.0;
  for (const double v : values) serial += v;
  // threads <= 1 is the plain serial loop, bit-for-bit.
  EXPECT_EQ(kernels::reduced_parallel_sum(values.size(), 1, term), serial);
  // Each thread count has one fixed grouping: reruns agree exactly.
  for (const std::size_t threads : {2u, 3u, 4u, 7u}) {
    const double once = kernels::reduced_parallel_sum(values.size(), threads, term);
    const double again =
        kernels::reduced_parallel_sum(values.size(), threads, term);
    EXPECT_EQ(once, again) << threads;
    EXPECT_NEAR(once, serial, 1e-12);
  }
}

TEST(ThreadedGolden, SpmvTraceIsThreadCountInvariant) {
  // SpMV has no cross-element reductions, so the threaded variant is not
  // just deterministic but *identical* to the serial kernel.
  const auto serial = fi::run_golden(
      *kernels::make_program("spmv", kernels::Preset::kTiny));
  const auto threaded = fi::run_golden(
      *kernels::make_program("spmv+t2", kernels::Preset::kTiny));
  EXPECT_EQ(serial.trace, threaded.trace);
  EXPECT_EQ(serial.output, threaded.output);
  EXPECT_EQ(serial.phases, threaded.phases);
  EXPECT_EQ(serial.touch_sizes, threaded.touch_sizes);
}

TEST(ThreadedGolden, CgRerunsAreIdenticalPerThreadCount) {
  // CG's dot products regroup per thread count (different rounding than
  // serial), but each count is a single fixed grouping: reruns are exact.
  for (const char* name : {"cg+t2", "cg+t4", "stencil2d+t3"}) {
    SCOPED_TRACE(name);
    const fi::ProgramPtr program =
        kernels::make_program(name, kernels::Preset::kTiny);
    const auto first = fi::run_golden(*program);
    const auto second = fi::run_golden(*program);
    EXPECT_EQ(first.trace, second.trace);
    EXPECT_EQ(first.output, second.output);
    EXPECT_EQ(first.phases, second.phases);
  }
}

TEST(ThreadedInjection, InjectedRunsAreDeterministic) {
  const fi::ProgramPtr program =
      kernels::make_program("cg+t2", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  ASSERT_GT(golden.trace.size(), 10u);
  // A spread of sites and bits, including the high-exponent bit 62 whose
  // flips frequently crash.
  const std::uint64_t last = golden.trace.size() - 1;
  for (const auto& [site, bit] :
       std::vector<std::pair<std::uint64_t, int>>{
           {0, 52}, {last / 3, 62}, {last / 2, 0}, {last, 31}}) {
    const fi::Injection injection = fi::Injection::bit_flip(site, bit);
    const fi::ExperimentResult first =
        fi::run_injected(*program, golden, injection);
    const fi::ExperimentResult second =
        fi::run_injected(*program, golden, injection);
    EXPECT_EQ(first.outcome, second.outcome) << site << ":" << bit;
    EXPECT_EQ(first.crash_reason, second.crash_reason) << site << ":" << bit;
    EXPECT_DOUBLE_EQ(first.injected_error, second.injected_error);
    EXPECT_DOUBLE_EQ(first.output_error, second.output_error);
    EXPECT_EQ(first.crash_site, second.crash_site) << site << ":" << bit;
  }
}

TEST(ThreadedInference, SpmvBoundaryMatchesSerial) {
  // End-to-end: the full inference pipeline over the threaded SpMV variant
  // reproduces the serial records and boundary exactly (same golden trace,
  // same sampled ids, same outcomes, same thresholds).
  const fi::ProgramPtr serial =
      kernels::make_program("spmv", kernels::Preset::kTiny);
  const fi::ProgramPtr threaded =
      kernels::make_program("spmv+t2", kernels::Preset::kTiny);
  const fi::GoldenRun golden_serial = fi::run_golden(*serial);
  const fi::GoldenRun golden_threaded = fi::run_golden(*threaded);
  util::ThreadPool pool(2);
  campaign::InferenceOptions options;
  options.sample_fraction = 0.05;
  options.seed = 5;
  options.filter = true;
  const campaign::InferenceResult a =
      campaign::infer_uniform(*serial, golden_serial, options, pool);
  const campaign::InferenceResult b =
      campaign::infer_uniform(*threaded, golden_threaded, options, pool);

  EXPECT_EQ(a.sampled_ids, b.sampled_ids);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].id, b.records[i].id);
    EXPECT_EQ(a.records[i].result.outcome, b.records[i].result.outcome)
        << a.records[i].id;
  }
  ASSERT_EQ(a.boundary.sites(), b.boundary.sites());
  for (std::size_t site = 0; site < a.boundary.sites(); ++site) {
    EXPECT_DOUBLE_EQ(a.boundary.threshold(site), b.boundary.threshold(site))
        << site;
  }
}

}  // namespace
}  // namespace ftb
