// Overload-protection tests: the admission queue and in-flight caps must
// shed with Busy (never stall or drop), deadlines must expire waiting
// requests, the retry-after hint must reach the client, and the
// call_backoff helper must honour it.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "service/service.h"
#include "telemetry/events.h"

namespace ftb::service {
namespace {

class OverloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!net::net_supported()) GTEST_SKIP() << "no socket support";
    dir_ = std::filesystem::temp_directory_path() /
           ("ftb_overload_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override {
    stop();
    std::filesystem::remove_all(dir_);
  }

  void start(ServiceOptions options) {
    options.store_dir = dir_.string();
    options.telemetry = &telemetry_;
    telemetry_.set_enabled(true);
    service_ = std::make_unique<Service>(options);
    net::ServerOptions server_options;
    server_options.telemetry = &telemetry_;
    server_ = std::make_unique<net::Server>(*service_, server_options);
    service_->attach(server_.get());
    loop_ = std::thread([this] { server_->run(); });
  }

  void stop() {
    if (server_ == nullptr) return;
    service_->request_shutdown();
    if (loop_.joinable()) loop_.join();
    server_.reset();
    service_.reset();
  }

  net::Client make_client(std::uint32_t deadline_ms = 0) {
    net::ClientOptions options;
    options.port = server_->port();
    options.deadline_ms = deadline_ms;
    return net::Client(options);
  }

  telemetry::Telemetry telemetry_;
  std::unique_ptr<Service> service_;
  std::unique_ptr<net::Server> server_;
  std::thread loop_;
  std::filesystem::path dir_;
};

// Pipeline a burst far beyond the per-connection cap: every frame gets an
// answer (Pong or Busy with the configured hint), nothing is dropped, and
// the shed counters move.
TEST_F(OverloadTest, BurstBeyondTheCapsShedsWithBusy) {
  ServiceOptions options;
  options.per_conn_inflight_max = 2;
  options.admission_queue_max = 4;
  options.busy_retry_ms = 7;
  start(options);

  net::Client client = make_client();
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;
  constexpr int kBurst = 32;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client.send(make_ping(), &error)) << error;
  }
  int pongs = 0, busies = 0;
  for (int i = 0; i < kBurst; ++i) {
    const auto reply = client.recv(&error, 30000);
    ASSERT_TRUE(reply.has_value()) << error << " (reply " << i << ")";
    if (reply->type == static_cast<std::uint32_t>(MsgType::kPong)) {
      ++pongs;
    } else {
      const auto busy = parse_busy(*reply, &error);
      ASSERT_TRUE(busy.has_value())
          << "unexpected reply type " << reply->type << ": " << error;
      EXPECT_EQ(busy->retry_after_ms, 7u);
      ++busies;
    }
  }
  EXPECT_EQ(pongs + busies, kBurst);
  EXPECT_GT(pongs, 0);
  // A burst this size against a cap of 2 cannot fit in one admission
  // window unless the loop drained between sends; either way every reply
  // arrived.  When sheds happened, the telemetry must say so.
  const auto stats_reply = client.call(make_stats(), &error);
  ASSERT_TRUE(stats_reply.has_value()) << error;
  const auto stats = parse_stats_ok(*stats_reply, &error);
  ASSERT_TRUE(stats.has_value()) << error;
  if (busies > 0) {
    EXPECT_NE(stats->metrics_json.find("service.busy_sent"),
              std::string::npos);
  }
  EXPECT_NE(stats->metrics_json.find("service.admission_depth"),
            std::string::npos);
}

// A saturated job queue answers SubmitCampaign with Busy (not Error), so
// clients know to retry rather than give up.
TEST_F(OverloadTest, SaturatedJobQueueAnswersBusyWithHint) {
  ServiceOptions options;
  options.max_queue = 0;  // every submission is one too many
  options.busy_retry_ms = 13;
  start(options);

  net::Client client = make_client();
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;
  SubmitCampaignReq req;
  req.kernel = "daxpy";
  ASSERT_TRUE(client.send(make_submit_campaign(req), &error)) << error;
  const auto reply = client.recv(&error, 30000);
  ASSERT_TRUE(reply.has_value()) << error;
  const auto busy = parse_busy(*reply, &error);
  ASSERT_TRUE(busy.has_value()) << "want Busy, got type " << reply->type;
  EXPECT_NE(busy->message.find("queue is full"), std::string::npos);
  EXPECT_EQ(busy->retry_after_ms, 13u);
}

// call_backoff retries on Busy and hands back the final verdict when the
// retries run out -- the reply itself, never a transport error.
TEST_F(OverloadTest, CallBackoffReturnsTheFinalBusyWhenRetriesExhaust) {
  ServiceOptions options;
  options.max_queue = 0;
  options.busy_retry_ms = 1;
  start(options);

  net::Client client = make_client();
  util::RetryOptions retry;
  retry.max_retries = 2;
  retry.initial_backoff_ms = 1;
  retry.max_total_sleep_ms = 50;
  std::string error;
  SubmitCampaignReq req;
  req.kernel = "daxpy";
  const auto reply = client.call_backoff(
      make_submit_campaign(req),
      [](const net::Frame& frame) -> std::optional<std::uint64_t> {
        if (const auto busy = parse_busy(frame)) return busy->retry_after_ms;
        return std::nullopt;
      },
      retry, &error);
  ASSERT_TRUE(reply.has_value()) << error;
  EXPECT_TRUE(parse_busy(*reply).has_value());
}

// Deadline shedding: when the loop tick is slow, a request with a 1 ms
// deadline expires in the queue and gets Busy, while an undeadlined
// request on the same server still gets its answer.
TEST_F(OverloadTest, ExpiredDeadlinesAreShedWhileUndeadlinedWork) {
  ServiceOptions options;
  start(options);
  // Every tick stalls long enough that any queued request has waited past
  // a 1 ms deadline by the time it is considered for dispatch.
  service_->set_tick_hook(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(10)); });

  net::Client deadlined = make_client(/*deadline_ms=*/1);
  std::string error;
  const auto shed = deadlined.call(make_ping(), &error);
  ASSERT_TRUE(shed.has_value()) << error;
  const auto busy = parse_busy(*shed, &error);
  ASSERT_TRUE(busy.has_value()) << "want Busy, got type " << shed->type;
  EXPECT_NE(busy->message.find("deadline"), std::string::npos);

  net::Client patient = make_client(/*deadline_ms=*/0);
  const auto pong = patient.call(make_ping(), &error);
  ASSERT_TRUE(pong.has_value()) << error;
  EXPECT_EQ(pong->type, static_cast<std::uint32_t>(MsgType::kPong));
}

}  // namespace
}  // namespace ftb::service
