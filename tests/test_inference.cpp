#include "campaign/inference.h"

#include <gtest/gtest.h>

#include "boundary/metrics.h"
#include "boundary/predictor.h"
#include "campaign/ground_truth.h"
#include "kernels/registry.h"

namespace ftb::campaign {
namespace {

struct Prepared {
  explicit Prepared(const std::string& name)
      : program(kernels::make_program(name, kernels::Preset::kTiny)),
        golden(fi::run_golden(*program)),
        pool(2) {}
  fi::ProgramPtr program;
  fi::GoldenRun golden;
  util::ThreadPool pool;
};

TEST(Inference, RunsRequestedFraction) {
  Prepared p("stencil2d");
  InferenceOptions options;
  options.sample_fraction = 0.05;
  const InferenceResult result =
      infer_uniform(*p.program, p.golden, options, p.pool);
  const auto expected = static_cast<std::uint64_t>(
      0.05 * static_cast<double>(p.golden.sample_space_size()) + 0.5);
  EXPECT_EQ(result.sampled_ids.size(), expected);
  EXPECT_EQ(result.records.size(), expected);
  EXPECT_EQ(result.counts.total(), expected);
  EXPECT_EQ(result.boundary.sites(), p.golden.dynamic_instructions());
}

TEST(Inference, DeterministicForSeed) {
  Prepared p("daxpy");
  InferenceOptions options;
  options.sample_fraction = 0.1;
  options.seed = 99;
  const InferenceResult a = infer_uniform(*p.program, p.golden, options, p.pool);
  const InferenceResult b = infer_uniform(*p.program, p.golden, options, p.pool);
  EXPECT_EQ(a.sampled_ids, b.sampled_ids);
  for (std::size_t i = 0; i < a.boundary.sites(); ++i) {
    EXPECT_DOUBLE_EQ(a.boundary.threshold(i), b.boundary.threshold(i)) << i;
  }
}

TEST(Inference, TrainingSamplesAreSelfConsistent) {
  // Every masked sample's own injected error must sit inside the boundary
  // it helped build (Algorithm 1 aggregates a max): training recall is 1
  // without the filter.
  Prepared p("stencil2d");
  InferenceOptions options;
  options.sample_fraction = 0.03;
  options.filter = false;
  const InferenceResult result =
      infer_uniform(*p.program, p.golden, options, p.pool);
  for (const ExperimentRecord& record : result.records) {
    if (record.result.outcome != fi::Outcome::kMasked) continue;
    const std::uint64_t site = site_of(record.id);
    EXPECT_TRUE(
        result.boundary.predict_masked(site, record.result.injected_error))
        << "site " << site;
  }
}

TEST(Inference, InformationCountsInjectionsAndPropagation) {
  Prepared p("stencil2d");
  InferenceOptions options;
  options.sample_fraction = 0.05;
  const InferenceResult result =
      infer_uniform(*p.program, p.golden, options, p.pool);
  ASSERT_EQ(result.information.size(), p.golden.dynamic_instructions());
  double total = 0.0;
  for (double s : result.information) total += s;
  // At minimum the significant injections themselves contribute, and in the
  // stencil error spreads, so propagation touches must dominate samples.
  EXPECT_GT(total, static_cast<double>(result.sampled_ids.size()));
}

TEST(Inference, FilterNeverLowersPrecision) {
  Prepared p("cg");
  const GroundTruth truth =
      GroundTruth::compute(*p.program, p.golden, p.pool, /*use_cache=*/false);

  InferenceOptions options;
  options.sample_fraction = 0.05;
  options.seed = 3;
  options.filter = false;
  const InferenceResult plain =
      infer_uniform(*p.program, p.golden, options, p.pool);
  options.filter = true;
  const InferenceResult filtered =
      infer_uniform(*p.program, p.golden, options, p.pool);

  const auto plain_metrics = boundary::evaluate_boundary(
      plain.boundary, p.golden.trace, truth.outcomes(), plain.sampled_ids);
  const auto filtered_metrics =
      boundary::evaluate_boundary(filtered.boundary, p.golden.trace,
                                  truth.outcomes(), filtered.sampled_ids);
  EXPECT_GE(filtered_metrics.precision() + 1e-12, plain_metrics.precision());
  // And the filter can only shrink thresholds.
  for (std::size_t i = 0; i < plain.boundary.sites(); ++i) {
    EXPECT_LE(filtered.boundary.threshold(i),
              plain.boundary.threshold(i) + 1e-300)
        << i;
  }
}

TEST(Inference, PrecisionHighOnMonotoneKernel) {
  Prepared p("stencil2d");
  const GroundTruth truth =
      GroundTruth::compute(*p.program, p.golden, p.pool, /*use_cache=*/false);
  InferenceOptions options;
  options.sample_fraction = 0.02;
  options.filter = true;
  const InferenceResult result =
      infer_uniform(*p.program, p.golden, options, p.pool);
  const auto metrics = boundary::evaluate_boundary(
      result.boundary, p.golden.trace, truth.outcomes(), result.sampled_ids);
  EXPECT_GT(metrics.precision(), 0.9);
  EXPECT_GT(metrics.recall(), 0.2);  // even 2% sampling covers a lot
  // Self-verification: uncertainty should sit close to the true precision.
  EXPECT_NEAR(metrics.uncertainty(), metrics.precision(), 0.1);
}

TEST(Inference, ConfusionOnRecordsMatchesFullEvaluationOnSameIds) {
  Prepared p("daxpy");
  const GroundTruth truth =
      GroundTruth::compute(*p.program, p.golden, p.pool, /*use_cache=*/false);
  InferenceOptions options;
  options.sample_fraction = 0.2;
  const InferenceResult result =
      infer_uniform(*p.program, p.golden, options, p.pool);

  const util::Confusion on_records = confusion_on_records(
      result.boundary, p.golden.trace, result.records);
  const auto metrics = boundary::evaluate_boundary(
      result.boundary, p.golden.trace, truth.outcomes(), result.sampled_ids);
  EXPECT_EQ(on_records.true_positive, metrics.sampled.true_positive);
  EXPECT_EQ(on_records.false_positive, metrics.sampled.false_positive);
  EXPECT_EQ(on_records.false_negative, metrics.sampled.false_negative);
  EXPECT_EQ(on_records.true_negative, metrics.sampled.true_negative);
}

}  // namespace
}  // namespace ftb::campaign
