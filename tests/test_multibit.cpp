#include <cmath>

#include <gtest/gtest.h>

#include "fi/executor.h"
#include "fi/fpbits.h"
#include "fi/tracer.h"
#include "kernels/blas1.h"

namespace ftb::fi {
namespace {

TEST(XorMaskInjection, SingleBitMaskEqualsBitFlip) {
  for (double v : {1.5, -42.0, 1e-10}) {
    for (int bit : {0, 20, 52, 63}) {
      const Injection mask = Injection::xor_mask(0, std::uint64_t{1} << bit);
      const Injection flip = Injection::bit_flip(0, bit);
      EXPECT_EQ(mask.apply(v), flip.apply(v)) << v << " bit " << bit;
    }
  }
}

TEST(XorMaskInjection, DoubleBitFlipsBothBits) {
  const double v = 3.25;
  const Injection injection = Injection::double_bit_flip(0, 3, 40);
  const double corrupted = injection.apply(v);
  EXPECT_EQ(to_bits(corrupted),
            to_bits(v) ^ (std::uint64_t{1} << 3) ^ (std::uint64_t{1} << 40));
  // Applying twice restores the value (XOR involution).
  EXPECT_EQ(injection.apply(corrupted), v);
}

TEST(XorMaskInjection, ZeroMaskIsIdentity) {
  const Injection injection = Injection::xor_mask(0, 0);
  EXPECT_EQ(injection.apply(7.5), 7.5);
}

TEST(XorMaskInjection, RunsThroughTheExecutor) {
  kernels::DaxpyConfig config;
  config.n = 8;
  const kernels::DaxpyProgram program(config);
  const GoldenRun golden = run_golden(program);

  // LSB double flip: tiny error, masked.
  const ExperimentResult small = run_injected(
      program, golden, Injection::double_bit_flip(0, 0, 1));
  EXPECT_EQ(small.outcome, Outcome::kMasked);

  // Sign + high exponent bit on an output element: macroscopic corruption.
  const std::uint64_t out_site = golden.trace.size() - 1;
  const ExperimentResult large = run_injected(
      program, golden, Injection::double_bit_flip(out_site, 55, 63));
  EXPECT_NE(large.outcome, Outcome::kMasked);
  EXPECT_GT(large.injected_error, golden.tolerance);
}

TEST(XorMaskInjection, InjectedErrorIsMagnitudeOfPatternChange) {
  kernels::DaxpyConfig config;
  config.n = 4;
  const kernels::DaxpyProgram program(config);
  const GoldenRun golden = run_golden(program);
  const Injection injection = Injection::double_bit_flip(2, 5, 17);
  const ExperimentResult result = run_injected(program, golden, injection);
  const double expected =
      std::fabs(injection.apply(golden.trace[2]) - golden.trace[2]);
  EXPECT_DOUBLE_EQ(result.injected_error, expected);
}

}  // namespace
}  // namespace ftb::fi
