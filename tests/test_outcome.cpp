#include "fi/outcome.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace ftb::fi {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(Outcome, ToString) {
  EXPECT_STREQ(to_string(Outcome::kMasked), "Masked");
  EXPECT_STREQ(to_string(Outcome::kSdc), "SDC");
  EXPECT_STREQ(to_string(Outcome::kCrash), "Crash");
  EXPECT_STREQ(to_string(Outcome::kDetected), "Detected");
}

TEST(Outcome, NameOfRawValue) {
  // outcome_name is the diagnostic used for raw on-disk bytes: known values
  // print their name, unknown (future) values print the integer.
  EXPECT_EQ(outcome_name(static_cast<std::uint64_t>(Outcome::kDetected)),
            "Detected");
  EXPECT_EQ(outcome_name(0), "Masked");
  EXPECT_EQ(outcome_name(250), "unknown(250)");
}

TEST(OutputComparator, LinfDistance) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 2.5, 2.0};
  EXPECT_DOUBLE_EQ(OutputComparator::linf_distance(a, b), 1.0);
}

TEST(OutputComparator, LinfWithNanIsInfinite) {
  const std::vector<double> a = {1.0, kNan};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_TRUE(std::isinf(OutputComparator::linf_distance(a, b)));
}

TEST(OutputComparator, ThresholdScalesWithOutput) {
  const OutputComparator cmp{1e-9, 1e-6};
  const std::vector<double> small = {0.5, -0.25};
  const std::vector<double> large = {1e6, -2e6};
  EXPECT_NEAR(cmp.threshold_for(small), 1e-9 + 0.5e-6, 1e-18);
  EXPECT_NEAR(cmp.threshold_for(large), 1e-9 + 2.0, 1e-9);
}

TEST(OutputComparator, ClassifyMasked) {
  const OutputComparator cmp{1e-6, 1e-6};
  const std::vector<double> golden = {1.0, 2.0};
  const std::vector<double> close = {1.0 + 1e-9, 2.0};
  EXPECT_EQ(cmp.classify(close, golden), Outcome::kMasked);
  EXPECT_EQ(cmp.classify(golden, golden), Outcome::kMasked);
}

TEST(OutputComparator, ClassifySdc) {
  const OutputComparator cmp{1e-9, 1e-9};
  const std::vector<double> golden = {1.0, 2.0};
  const std::vector<double> wrong = {1.0, 2.1};
  EXPECT_EQ(cmp.classify(wrong, golden), Outcome::kSdc);
}

TEST(OutputComparator, ClassifySdcOnNonFinite) {
  // Deterministic rule: a run that *finished* with NaN/Inf in its output
  // never trapped, so the corruption is silent -- always SDC, never Masked
  // and never Crash (crashes are loud; the CrashSignal path covers them).
  const OutputComparator cmp{};
  const std::vector<double> golden = {1.0, 2.0};
  EXPECT_EQ(cmp.classify(std::vector<double>{1.0, kInf}, golden),
            Outcome::kSdc);
  EXPECT_EQ(cmp.classify(std::vector<double>{kNan, 2.0}, golden),
            Outcome::kSdc);
  EXPECT_EQ(cmp.classify(std::vector<double>{1.0, -kInf}, golden),
            Outcome::kSdc);
}

TEST(OutputComparator, NonFiniteOutputNeverMasked) {
  // Even under an absurdly permissive tolerance a non-finite output must
  // not classify as Masked.
  const OutputComparator cmp{1e300, 1e300};
  const std::vector<double> golden = {1.0, 2.0};
  EXPECT_EQ(cmp.classify(std::vector<double>{kInf, 2.0}, golden),
            Outcome::kSdc);
  EXPECT_EQ(cmp.classify(std::vector<double>{1.0, kNan}, golden),
            Outcome::kSdc);
}

TEST(CrashReasonTaxonomy, QuarantinedIsIsolationReason) {
  EXPECT_STREQ(to_string(CrashReason::kQuarantined), "quarantined");
  EXPECT_TRUE(is_isolation_reason(CrashReason::kQuarantined));
  EXPECT_FALSE(is_isolation_reason(CrashReason::kNonFinite));
}

class ToleranceBoundarySweep : public ::testing::TestWithParam<double> {};

TEST_P(ToleranceBoundarySweep, ErrorsAtToleranceAreMasked) {
  // Property: an output exactly at the acceptance threshold is Masked,
  // just above it is SDC.
  const double rtol = GetParam();
  const OutputComparator cmp{0.0, rtol};
  const std::vector<double> golden = {2.0, -1.0};
  // Perturb by clearly-below / clearly-above fractions of the threshold so
  // the rounding of 2.0 + delta (up to half an ulp of 2.0) cannot move the
  // perturbation across the acceptance line.
  const double threshold = cmp.threshold_for(golden);
  EXPECT_EQ(
      cmp.classify(std::vector<double>{2.0 + 0.5 * threshold, -1.0}, golden),
      Outcome::kMasked);
  EXPECT_EQ(
      cmp.classify(std::vector<double>{2.0 + 1.5 * threshold, -1.0}, golden),
      Outcome::kSdc);
}

INSTANTIATE_TEST_SUITE_P(Rtols, ToleranceBoundarySweep,
                         ::testing::Values(1e-3, 1e-6, 1e-9, 1e-12));

}  // namespace
}  // namespace ftb::fi
