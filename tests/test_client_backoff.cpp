// Regression tests for net::Client::call_backoff against a scripted raw
// server, covering the nasty spot the real ftb_served never shows on
// purpose: the server answers Busy and then CLOSES the connection before
// the client retries.  The reconnect path must honour the Busy hint and the
// growing backoff (sleep, reconnect, retry) -- not spin reconnect attempts
// at the listener as fast as accept() allows.
#include "net/client.h"

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.h"
#include "net/socket.h"
#include "service/protocol.h"

namespace ftb::net {
namespace {

/// One accept at a time: read one frame, run the step script, repeat.
struct ScriptedServer {
  enum class Step { kBusyThenClose, kPong };

  explicit ScriptedServer(std::vector<Step> script)
      : script(std::move(script)) {
    std::string error;
    listener = listen_tcp("127.0.0.1", 0, &port, &error);
    EXPECT_TRUE(listener.valid()) << error;
    thread = std::thread([this] { run(); });
  }

  ~ScriptedServer() {
    if (listener.valid()) ::shutdown(listener.get(), SHUT_RDWR);
    if (thread.joinable()) thread.join();
  }

  void run() {
    for (const Step step : script) {
      Fd conn(::accept(listener.get(), nullptr, nullptr));
      if (!conn.valid()) return;  // listener torn down: test is over
      ++connections;
      // Read until one whole frame decodes (the request).
      FrameDecoder decoder;
      Frame request;
      bool have_request = false;
      std::string error;
      while (!have_request) {
        std::uint8_t buf[4096];
        const long n = recv_some(conn.get(), buf, sizeof(buf), 5000, &error);
        if (n <= 0) break;
        decoder.feed(buf, static_cast<std::size_t>(n));
        if (decoder.pop(&request) == FrameDecoder::Status::kFrame) {
          have_request = true;
        }
      }
      if (!have_request) continue;
      ++requests;
      const Frame reply = step == Step::kPong
                              ? service::make_pong()
                              : service::make_busy("shedding", busy_hint_ms);
      const std::vector<std::uint8_t> bytes = encode_frame(reply);
      send_all(conn.get(), bytes.data(), bytes.size(), &error);
      // kBusyThenClose: the Fd destructor closes the connection right after
      // the Busy flushes -- precisely the race under test.
    }
  }

  std::vector<Step> script;
  std::uint64_t busy_hint_ms = 150;
  Fd listener;
  std::uint16_t port = 0;
  std::thread thread;
  std::atomic<int> connections{0};
  std::atomic<int> requests{0};
};

std::optional<std::uint64_t> busy_hint(const Frame& frame) {
  const auto busy = service::parse_busy(frame);
  if (!busy.has_value()) return std::nullopt;
  return busy->retry_after_ms;
}

TEST(ClientBackoff, BusyThenCloseRearmsBackoffInsteadOfSpinning) {
  if (!net_supported()) GTEST_SKIP() << "no socket support";
  using Step = ScriptedServer::Step;
  ScriptedServer server(
      {Step::kBusyThenClose, Step::kBusyThenClose, Step::kPong});

  ClientOptions options;
  options.port = server.port;
  options.connect_retry.max_retries = 8;
  options.connect_retry.initial_backoff_ms = 10;
  Client client(options);

  util::RetryOptions retry;
  retry.max_retries = 5;
  retry.initial_backoff_ms = 20;  // overridden by the server's 150ms hint
  retry.jitter = 0.0;

  std::string error;
  const auto start = std::chrono::steady_clock::now();
  const auto reply =
      client.call_backoff(service::make_ping(), busy_hint, retry, &error);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  ASSERT_TRUE(reply.has_value()) << error;
  EXPECT_EQ(reply->type, static_cast<std::uint32_t>(service::MsgType::kPong));

  // Two Busy replies were served, each followed by a close; the final Pong
  // makes three requests.  A spinning client would hammer out reconnects
  // and requests far beyond the script.
  EXPECT_EQ(server.requests.load(), 3);
  EXPECT_EQ(server.connections.load(), 3);

  // The backoff must actually have been slept: the first retry honours the
  // 150ms hint and the second the grown (>= hint) backoff.  Spinning would
  // finish in single-digit milliseconds.
  EXPECT_GE(elapsed.count(), 300);
}

TEST(ClientBackoff, FinalBusyIsReturnedAfterRetriesExhaust) {
  if (!net_supported()) GTEST_SKIP() << "no socket support";
  using Step = ScriptedServer::Step;
  // Never relents: every attempt gets Busy + close.
  ScriptedServer server({Step::kBusyThenClose, Step::kBusyThenClose,
                         Step::kBusyThenClose, Step::kBusyThenClose});
  server.busy_hint_ms = 30;

  ClientOptions options;
  options.port = server.port;
  options.connect_retry.max_retries = 8;
  options.connect_retry.initial_backoff_ms = 10;
  Client client(options);

  // 1 initial call + up to (1 + max_retries) loop attempts = 4 requests,
  // exactly the script length -- a 5th would hang on an unanswered accept.
  util::RetryOptions retry;
  retry.max_retries = 2;
  retry.initial_backoff_ms = 20;
  retry.jitter = 0.0;

  std::string error;
  const auto reply =
      client.call_backoff(service::make_ping(), busy_hint, retry, &error);
  // The contract: the last reply comes back even when it is still Busy --
  // the caller decides how to report it.  No transport error, no spin.
  ASSERT_TRUE(reply.has_value()) << error;
  EXPECT_EQ(reply->type, static_cast<std::uint32_t>(service::MsgType::kBusy));
  EXPECT_LE(server.requests.load(), 4);
}

}  // namespace
}  // namespace ftb::net
