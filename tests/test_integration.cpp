// End-to-end reproduction checks on tiny kernel configurations: the shapes
// the paper's evaluation reports must already hold at test scale.
#include <cmath>

#include <gtest/gtest.h>

#include "boundary/exhaustive.h"
#include "boundary/metrics.h"
#include "boundary/predictor.h"
#include "campaign/adaptive.h"
#include "campaign/ground_truth.h"
#include "campaign/inference.h"
#include "kernels/registry.h"
#include "util/stats.h"

namespace ftb {
namespace {

struct Prepared {
  explicit Prepared(const std::string& name)
      : program(kernels::make_program(name, kernels::Preset::kTiny)),
        golden(fi::run_golden(*program)),
        pool(2),
        truth(campaign::GroundTruth::compute(*program, golden, pool,
                                             /*use_cache=*/false)) {}
  fi::ProgramPtr program;
  fi::GoldenRun golden;
  util::ThreadPool pool;
  campaign::GroundTruth truth;
};

class ExhaustiveBoundaryShape : public ::testing::TestWithParam<std::string> {
};

TEST_P(ExhaustiveBoundaryShape, ApproximatesGoldenSdcClosely) {
  // Paper Table 1: the boundary built from the exhaustive campaign predicts
  // an overall SDC ratio very close to the ground truth.
  Prepared p(GetParam());
  const boundary::FaultToleranceBoundary exhaustive =
      boundary::exhaustive_boundary(p.truth.outcomes(), p.golden.trace);
  const double approx =
      boundary::predicted_overall_sdc(exhaustive, p.golden.trace);
  const double golden_ratio = p.truth.overall_sdc_ratio();
  EXPECT_NEAR(approx, golden_ratio, 0.05)
      << "golden=" << golden_ratio << " approx=" << approx;
  // Non-monotonic sites can only make the boundary overestimate SDC.
  EXPECT_GE(approx + 1e-12, golden_ratio);
}

TEST_P(ExhaustiveBoundaryShape, DeltaSdcMassConcentratesAtZero) {
  // Paper Figure 3: the Golden - Approx histogram has its mass at zero.
  Prepared p(GetParam());
  const boundary::FaultToleranceBoundary exhaustive =
      boundary::exhaustive_boundary(p.truth.outcomes(), p.golden.trace);
  const std::vector<double> golden_profile = p.truth.sdc_profile();
  const std::vector<double> predicted_profile =
      boundary::predicted_sdc_profile(exhaustive, p.golden.trace);
  const std::vector<double> delta =
      boundary::delta_sdc_profile(golden_profile, predicted_profile);
  std::size_t zeroish = 0;
  for (double d : delta) {
    if (std::fabs(d) < 1e-12) ++zeroish;
  }
  // At tiny problem sizes the non-monotonic share is larger than the
  // paper's ~10%, but the mass still concentrates at zero and the average
  // overestimation stays small.
  EXPECT_GT(static_cast<double>(zeroish) / static_cast<double>(delta.size()),
            0.5);
  EXPECT_LT(util::mean_absolute_error(golden_profile, predicted_profile),
            0.05);
}

INSTANTIATE_TEST_SUITE_P(Kernels, ExhaustiveBoundaryShape,
                         ::testing::Values("cg", "lu", "fft", "stencil2d"));

TEST(Integration, InferencePrecisionAndUncertaintyAgree) {
  // Paper Table 2: precision ~ uncertainty, both high, recall lower.
  Prepared p("cg");
  campaign::InferenceOptions options;
  options.sample_fraction = 0.05;
  options.filter = true;
  util::RunningStats precision_stats, uncertainty_stats, recall_stats;
  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    options.seed = 100 + trial;
    const campaign::InferenceResult result =
        campaign::infer_uniform(*p.program, p.golden, options, p.pool);
    const auto metrics =
        boundary::evaluate_boundary(result.boundary, p.golden.trace,
                                    p.truth.outcomes(), result.sampled_ids);
    precision_stats.add(metrics.precision());
    uncertainty_stats.add(metrics.uncertainty());
    recall_stats.add(metrics.recall());
  }
  EXPECT_GT(precision_stats.mean(), 0.9);
  EXPECT_NEAR(uncertainty_stats.mean(), precision_stats.mean(), 0.08);
  EXPECT_GT(recall_stats.mean(), 0.3);
  EXPECT_LT(recall_stats.mean(), 1.0);  // 5% sampling cannot cover all
}

TEST(Integration, RecallGrowsWithSampleSize) {
  // Paper Figure 5: recall rises steeply with the sampling rate.
  Prepared p("fft");
  double previous_recall = -1.0;
  for (double fraction : {0.002, 0.02, 0.2}) {
    campaign::InferenceOptions options;
    options.sample_fraction = fraction;
    options.filter = true;
    options.seed = 42;
    const campaign::InferenceResult result =
        campaign::infer_uniform(*p.program, p.golden, options, p.pool);
    const auto metrics =
        boundary::evaluate_boundary(result.boundary, p.golden.trace,
                                    p.truth.outcomes(), result.sampled_ids);
    EXPECT_GT(metrics.recall(), previous_recall) << "fraction " << fraction;
    previous_recall = metrics.recall();
  }
  EXPECT_GT(previous_recall, 0.5);
}

TEST(Integration, AdaptiveCoversMoreMaskedCasesAtEqualBudget) {
  // Paper Section 4.5 / Table 3: the adaptive sampler's value is coverage
  // -- biasing towards information-poor sites and pruning the pool lets it
  // identify (predict) far more of the masked cases than uniform sampling
  // with the same number of experiments, stopping on its own with a small
  // fraction of the space.  (The paper's Table 3 also shows the flip side
  // we reproduce: on CG the pruned pool stops collecting contradicting SDC
  // evidence, so the predicted SDC ratio lands *below* the golden ratio --
  // 5.3% vs 8.2% in the paper.)
  Prepared p("cg");
  campaign::AdaptiveOptions adaptive_options;
  adaptive_options.round_fraction = 0.004;
  adaptive_options.seed = 7;
  const campaign::AdaptiveResult adaptive = campaign::infer_adaptive(
      *p.program, p.golden, adaptive_options, p.pool);
  EXPECT_LT(adaptive.sample_fraction(), 0.25);  // stops well short of space

  campaign::InferenceOptions uniform_options;
  uniform_options.sample_fraction = adaptive.sample_fraction();
  uniform_options.filter = true;
  uniform_options.seed = 7;
  const campaign::InferenceResult uniform = campaign::infer_uniform(
      *p.program, p.golden, uniform_options, p.pool);

  const auto adaptive_metrics =
      boundary::evaluate_boundary(adaptive.boundary, p.golden.trace,
                                  p.truth.outcomes(), adaptive.sampled_ids);
  const auto uniform_metrics =
      boundary::evaluate_boundary(uniform.boundary, p.golden.trace,
                                  p.truth.outcomes(), uniform.sampled_ids);
  EXPECT_GE(adaptive_metrics.recall() + 1e-9, uniform_metrics.recall());
  EXPECT_GT(adaptive_metrics.recall(), 0.9);

  // Table 3 shape: the adaptive prediction stays in the golden ratio's
  // neighbourhood (under- rather than over-estimating on CG).
  const double predicted =
      boundary::predicted_overall_sdc(adaptive.boundary, p.golden.trace);
  EXPECT_NEAR(predicted, p.truth.overall_sdc_ratio(), 0.25);
}

TEST(Integration, PredictedProfileCorrelatesWithTruth) {
  // Paper Figure 4 row 1 on CG, whose profile has strong structure (the
  // init phases are nearly invulnerable, the iterations are not).
  Prepared p("cg");
  campaign::InferenceOptions options;
  options.sample_fraction = 0.1;
  options.filter = true;
  const campaign::InferenceResult result =
      campaign::infer_uniform(*p.program, p.golden, options, p.pool);
  // Group consecutive sites exactly as Figure 4 does before comparing --
  // per-site predictions at partial sampling are noisy, grouped means are
  // the paper's unit of presentation.
  const std::vector<double> predicted = util::group_means(
      boundary::predicted_sdc_profile(result.boundary, p.golden.trace), 8);
  const std::vector<double> truth_profile =
      util::group_means(p.truth.sdc_profile(), 8);
  EXPECT_GT(util::pearson_correlation(predicted, truth_profile), 0.6);
}

TEST(Integration, PredictedProfileOverestimatesNotUnder) {
  // Paper Section 4.4: unknown experiments are assumed SDC, so partial
  // sampling can only overestimate -- grouped prediction means sit at or
  // above the truth, and the gap stays moderate (LU's flat profile).
  Prepared p("lu");
  campaign::InferenceOptions options;
  options.sample_fraction = 0.1;
  options.filter = true;
  const campaign::InferenceResult result =
      campaign::infer_uniform(*p.program, p.golden, options, p.pool);
  const std::vector<double> predicted = util::group_means(
      boundary::predicted_sdc_profile(result.boundary, p.golden.trace), 8);
  const std::vector<double> truth_profile =
      util::group_means(p.truth.sdc_profile(), 8);
  std::size_t underestimates = 0;
  for (std::size_t g = 0; g < predicted.size(); ++g) {
    if (predicted[g] + 0.10 < truth_profile[g]) ++underestimates;
  }
  EXPECT_LT(static_cast<double>(underestimates) /
                static_cast<double>(predicted.size()),
            0.15);
  EXPECT_LT(util::mean_absolute_error(predicted, truth_profile), 0.15);
}

}  // namespace
}  // namespace ftb
