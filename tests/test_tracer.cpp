#include "fi/tracer.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "fi/fpbits.h"

namespace ftb::fi {
namespace {

/// Pushes a fixed little computation through a tracer.
std::vector<double> drive(Tracer& tracer, std::size_t steps = 8) {
  std::vector<double> produced;
  double accumulator = 1.0;
  for (std::size_t i = 0; i < steps; ++i) {
    accumulator = tracer.step(accumulator * 1.5 + 0.25);
    produced.push_back(accumulator);
  }
  return produced;
}

TEST(Tracer, CounterCounts) {
  Tracer tracer = Tracer::counter();
  drive(tracer, 13);
  EXPECT_EQ(tracer.steps(), 13u);
}

TEST(Tracer, RecorderCapturesGoldenTrace) {
  std::vector<double> trace;
  Tracer tracer = Tracer::recorder(trace);
  const std::vector<double> produced = drive(tracer);
  EXPECT_EQ(trace, produced);
}

TEST(Tracer, InjectorFlipsExactlyOneStep) {
  std::vector<double> golden;
  {
    Tracer recorder = Tracer::recorder(golden);
    drive(recorder);
  }
  const std::uint64_t site = 3;
  Tracer injector = Tracer::injector(Injection::bit_flip(site, 1));
  const std::vector<double> faulty = drive(injector);

  EXPECT_TRUE(injector.fired());
  EXPECT_DOUBLE_EQ(injector.original_value(), golden[site]);
  EXPECT_DOUBLE_EQ(faulty[site], flip_bit(golden[site], 1));
  EXPECT_DOUBLE_EQ(injector.injected_error(),
                   std::fabs(flip_bit(golden[site], 1) - golden[site]));
  // Before the site everything is bitwise identical.
  for (std::uint64_t i = 0; i < site; ++i) {
    EXPECT_EQ(faulty[i], golden[i]) << i;
  }
  // The corruption propagates through the dependent computation.
  EXPECT_NE(faulty[site + 1], golden[site + 1]);
}

TEST(Tracer, AddDeltaInjection) {
  std::vector<double> golden;
  {
    Tracer recorder = Tracer::recorder(golden);
    drive(recorder);
  }
  Tracer injector = Tracer::injector(Injection::add_delta(2, 0.125));
  const std::vector<double> faulty = drive(injector);
  EXPECT_DOUBLE_EQ(faulty[2], golden[2] + 0.125);
  EXPECT_DOUBLE_EQ(injector.injected_error(), 0.125);
}

TEST(Tracer, SetValueInjection) {
  Tracer injector = Tracer::injector(Injection::set_value(0, 42.0));
  const std::vector<double> faulty = drive(injector);
  EXPECT_DOUBLE_EQ(faulty[0], 42.0);
}

TEST(Tracer, NonFiniteInjectionThrowsCrashSignal) {
  Tracer injector = Tracer::injector(
      Injection::set_value(1, std::numeric_limits<double>::infinity()));
  EXPECT_THROW(drive(injector), CrashSignal);
  EXPECT_TRUE(injector.fired());
  EXPECT_TRUE(std::isinf(injector.injected_error()));
}

TEST(Tracer, PropagatedNonFiniteThrowsCrashSignal) {
  // Drive a computation that divides by the traced value: corrupting it to
  // zero produces inf downstream, which must crash the run.
  auto divide_chain = [](Tracer& tracer) {
    double v = tracer.step(2.0);
    v = tracer.step(1.0 / v);      // inf if v was corrupted to 0
    v = tracer.step(v + 1.0);
    return v;
  };
  Tracer injector = Tracer::injector(Injection::set_value(0, 0.0));
  EXPECT_THROW(divide_chain(injector), CrashSignal);
}

TEST(Tracer, ComparatorRecordsPropagationDiffs) {
  std::vector<double> golden;
  {
    Tracer recorder = Tracer::recorder(golden);
    drive(recorder);
  }
  const std::uint64_t site = 2;
  std::vector<double> diffs(golden.size(), 0.0);
  Tracer comparator =
      Tracer::comparator(Injection::bit_flip(site, 40), golden, diffs);
  const std::vector<double> faulty = drive(comparator);

  for (std::uint64_t i = 0; i < golden.size(); ++i) {
    if (i < site) {
      EXPECT_EQ(diffs[i], 0.0) << "pre-injection site " << i;
    } else {
      EXPECT_DOUBLE_EQ(diffs[i], std::fabs(faulty[i] - golden[i])) << i;
    }
  }
  // diffs at the site equals the injected error.
  EXPECT_DOUBLE_EQ(diffs[site], comparator.injected_error());
}

TEST(Tracer, ZeroErrorInjectionLeavesTraceIdentical) {
  // Flipping the sign bit of 0.0 gives -0.0: zero injected error, and the
  // run must classify exactly like the golden one.
  auto with_zero = [](Tracer& tracer) {
    std::vector<double> out;
    out.push_back(tracer.step(0.0));
    out.push_back(tracer.step(out.back() + 1.0));
    return out;
  };
  std::vector<double> golden;
  {
    Tracer recorder = Tracer::recorder(golden);
    with_zero(recorder);
  }
  Tracer injector = Tracer::injector(Injection::bit_flip(0, kSignBit));
  const std::vector<double> faulty = with_zero(injector);
  EXPECT_DOUBLE_EQ(injector.injected_error(), 0.0);
  EXPECT_DOUBLE_EQ(faulty[1], golden[1]);
}

}  // namespace
}  // namespace ftb::fi
