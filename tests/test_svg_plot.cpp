#include "util/svg_plot.h"

#include <filesystem>
#include <limits>

#include <gtest/gtest.h>

namespace ftb::util {
namespace {

std::size_t count_substring(const std::string& text, const std::string& sub) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(sub); pos != std::string::npos;
       pos = text.find(sub, pos + sub.size())) {
    ++count;
  }
  return count;
}

TEST(SvgChart, ContainsCanvasTitleAndSeries) {
  const Series series[] = {
      {"alpha", {0.0, 0.5, 1.0}, '*'},
      {"beta", {1.0, 0.5, 0.0}, 'o'},
  };
  SvgOptions options;
  options.title = "Shape <check>";
  options.x_label = "x";
  options.y_label = "y";
  const std::string svg = svg_chart(series, options);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("alpha"), std::string::npos);
  EXPECT_NE(svg.find("beta"), std::string::npos);
  // XML-escaped title, never raw angle brackets inside text.
  EXPECT_NE(svg.find("Shape &lt;check&gt;"), std::string::npos);
  // One polyline per series (no NaN breaks).
  EXPECT_EQ(count_substring(svg, "<polyline"), 2u);
  // Balanced-ish structure: every tag we open is self-closing or closed.
  EXPECT_EQ(count_substring(svg, "<svg"), 1u);
}

TEST(SvgChart, NanBreaksPolylines) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Series series[] = {{"gappy", {0.0, 1.0, nan, 1.0, 0.0}, '*'}};
  const std::string svg = svg_chart(series);
  EXPECT_EQ(count_substring(svg, "<polyline"), 2u);  // two segments
}

TEST(SvgChart, ScatterUsesCircles) {
  const Series series[] = {{"dots", {0.1, 0.2, 0.3, 0.4}, '*'}};
  SvgOptions options;
  options.scatter = true;
  const std::string svg = svg_chart(series, options);
  EXPECT_EQ(count_substring(svg, "<circle"), 4u);
  EXPECT_EQ(count_substring(svg, "<polyline"), 0u);
}

TEST(SvgChart, EmptySeriesStillValid) {
  const Series series[] = {{"empty", {}, '*'}};
  const std::string svg = svg_chart(series);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgHistogram, BarsMatchNonEmptyBins) {
  Histogram histogram(0.0, 1.0, 4);
  histogram.add(0.1);
  histogram.add(0.1);
  histogram.add(0.9);
  const std::string svg = svg_histogram(histogram);
  // Background rect + frame rect + 2 bars.
  EXPECT_EQ(count_substring(svg, "<rect"), 4u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgFile, WriteAndFailurePaths) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("ftb_svg_" + std::to_string(::getpid()) + ".svg");
  const Series series[] = {{"s", {0.0, 1.0}, '*'}};
  ASSERT_TRUE(write_svg_file(path.string(), svg_chart(series)));
  EXPECT_GT(std::filesystem::file_size(path), 100u);
  std::filesystem::remove(path);
  EXPECT_FALSE(write_svg_file("/nonexistent-dir/x.svg", "<svg/>"));
}

}  // namespace
}  // namespace ftb::util
