#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ftb::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(99);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBound)];
  for (std::uint64_t c = 0; c < kBound; ++c) {
    EXPECT_NEAR(counts[c], kDraws / kBound, 0.05 * kDraws / kBound)
        << "bucket " << c;
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BernoulliEdgesAndRate) {
  Rng rng(11);
  EXPECT_FALSE(rng.next_bernoulli(0.0));
  EXPECT_TRUE(rng.next_bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.next_bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng parent(42);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, LongJumpChangesSequence) {
  Rng a(3), b(3);
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(AliasTable, EmptyOnDegenerateWeights) {
  EXPECT_TRUE(AliasTable(std::vector<double>{}).empty());
  const std::vector<double> zeros(4, 0.0);
  EXPECT_TRUE(AliasTable(zeros).empty());
}

TEST(AliasTable, UniformWeights) {
  const std::vector<double> weights(8, 1.0);
  AliasTable table(weights);
  ASSERT_EQ(table.size(), 8u);
  Rng rng(17);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[table.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, kDraws / 8, 0.06 * kDraws / 8);
}

TEST(AliasTable, SkewedWeightsMatchProportions) {
  const std::vector<double> weights = {1.0, 2.0, 4.0, 8.0, 0.0};
  AliasTable table(weights);
  Rng rng(23);
  std::vector<int> counts(weights.size(), 0);
  constexpr int kDraws = 150000;
  for (int i = 0; i < kDraws; ++i) ++counts[table.sample(rng)];
  EXPECT_EQ(counts[4], 0);  // zero weight never drawn
  const double total = 15.0;
  for (std::size_t c = 0; c < 4; ++c) {
    const double expected = kDraws * weights[c] / total;
    EXPECT_NEAR(counts[c], expected, 0.05 * kDraws) << "bucket " << c;
  }
}

class SampleWithoutReplacement
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {
};

TEST_P(SampleWithoutReplacement, DistinctSortedInRange) {
  const auto [n, k] = GetParam();
  Rng rng(31 + n + k);
  const std::vector<std::uint64_t> picked =
      sample_without_replacement(rng, n, k);
  ASSERT_EQ(picked.size(), k);
  EXPECT_TRUE(std::is_sorted(picked.begin(), picked.end()));
  const std::set<std::uint64_t> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), k);
  for (std::uint64_t v : picked) EXPECT_LT(v, n);
}

INSTANTIATE_TEST_SUITE_P(
    BothAlgorithms, SampleWithoutReplacement,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{1000, 5},
                      std::pair<std::uint64_t, std::uint64_t>{1000, 10},
                      std::pair<std::uint64_t, std::uint64_t>{1000, 500},
                      std::pair<std::uint64_t, std::uint64_t>{1000, 1000},
                      std::pair<std::uint64_t, std::uint64_t>{64, 0},
                      std::pair<std::uint64_t, std::uint64_t>{1, 1}));

TEST(SampleWithoutReplacementCoverage, EveryElementReachable) {
  // Sparse (Floyd) branch: over many draws of k=2 from n=64 every index
  // should appear.
  Rng rng(57);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 4000; ++i) {
    for (std::uint64_t v : sample_without_replacement(rng, 64, 2)) {
      seen.insert(v);
    }
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Shuffle, IsPermutation) {
  std::vector<std::uint64_t> values(100);
  for (std::uint64_t i = 0; i < 100; ++i) values[i] = i;
  Rng rng(61);
  shuffle(rng, values);
  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

}  // namespace
}  // namespace ftb::util
