#include "util/cli.h"

#include <array>

#include <gtest/gtest.h>

namespace ftb::util {
namespace {

Cli make_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Cli(static_cast<int>(args.size()),
             const_cast<char**>(args.data()));
}

TEST(Cli, EqualsForm) {
  const Cli cli = make_cli({"--kernel=cg", "--fraction=0.5"});
  EXPECT_TRUE(cli.has("kernel"));
  EXPECT_EQ(cli.get("kernel"), "cg");
  EXPECT_DOUBLE_EQ(cli.get_double("fraction", 0.0), 0.5);
}

TEST(Cli, SpaceForm) {
  const Cli cli = make_cli({"--kernel", "lu", "--trials", "10"});
  EXPECT_EQ(cli.get("kernel"), "lu");
  EXPECT_EQ(cli.get_int("trials", 0), 10);
}

TEST(Cli, BooleanSwitch) {
  const Cli cli = make_cli({"--verbose", "--flag=false"});
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_FALSE(cli.get_bool("flag", true));
  EXPECT_FALSE(cli.get_bool("absent", false));
  EXPECT_TRUE(cli.get_bool("absent", true));
}

TEST(Cli, Positional) {
  const Cli cli = make_cli({"first", "--k=v", "second"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "first");
  EXPECT_EQ(cli.positional()[1], "second");
}

TEST(Cli, DefaultsWhenMissing) {
  const Cli cli = make_cli({});
  EXPECT_FALSE(cli.has("anything"));
  EXPECT_EQ(cli.get("anything", "fallback"), "fallback");
  EXPECT_EQ(cli.get_int("n", -3), -3);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 2.5), 2.5);
}

TEST(Cli, NegativeNumericValueViaEquals) {
  const Cli cli = make_cli({"--offset=-7"});
  EXPECT_EQ(cli.get_int("offset", 0), -7);
}

}  // namespace
}  // namespace ftb::util
