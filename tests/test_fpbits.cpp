#include "fi/fpbits.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace ftb::fi {
namespace {

TEST(FpBits, RoundTrip) {
  for (double v : {0.0, 1.0, -1.5, 3.141592653589793, 1e300, -1e-300}) {
    EXPECT_EQ(from_bits(to_bits(v)), v);
  }
}

TEST(FpBits, FlipIsInvolution) {
  const double v = 42.75;
  for (int bit = 0; bit < kBitsPerValue; ++bit) {
    EXPECT_EQ(flip_bit(flip_bit(v, bit), bit), v) << "bit " << bit;
  }
}

TEST(FpBits, SignBitFlipNegates) {
  EXPECT_EQ(flip_bit(2.5, kSignBit), -2.5);
  EXPECT_EQ(flip_bit(-7.0, kSignBit), 7.0);
}

TEST(FpBits, MantissaLsbFlipIsOneUlp) {
  const double v = 1.0;
  const double flipped = flip_bit(v, 0);
  EXPECT_EQ(flipped, std::nextafter(1.0, 2.0));
  EXPECT_NEAR(bit_flip_error(v, 0), std::numeric_limits<double>::epsilon(),
              1e-30);
}

TEST(FpBits, HighestExponentBitOfOneIsHuge) {
  // 1.0 has exponent 0x3ff; flipping bit 62 gives exponent 0x7ff - ... a
  // non-finite or huge value.  For 1.0 specifically the result is exactly
  // the exponent pattern 0x7ff -> infinity-class, so the flip is
  // non-finite.
  EXPECT_TRUE(flip_is_nonfinite(1.0, 62));
}

TEST(FpBits, ZeroValueErrors) {
  // Flipping bits of +0.0: mantissa bits give tiny denormals, the top
  // exponent bit gives 2.0^... the paper notes the max perturbation of a
  // zero 32-bit float is 2 (highest exponent bit); for binary64 flipping
  // bit 62 of 0.0 yields 2^511-ish magnitude but still finite.
  EXPECT_GT(bit_flip_error(0.0, 62), 1.0);
  EXPECT_TRUE(std::isfinite(bit_flip_error(0.0, 62)));
  EXPECT_LT(bit_flip_error(0.0, 51), 1e-300);  // top mantissa bit: denormal
  // Sign flip of zero is -0.0: zero error.
  EXPECT_EQ(bit_flip_error(0.0, kSignBit), 0.0);
}

TEST(FpBits, ExponentBitClassification) {
  EXPECT_FALSE(is_exponent_bit(0));
  EXPECT_FALSE(is_exponent_bit(51));
  EXPECT_TRUE(is_exponent_bit(52));
  EXPECT_TRUE(is_exponent_bit(62));
  EXPECT_FALSE(is_exponent_bit(63));
}

TEST(FpBits, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(2.0, 2.0), 0.0);
  EXPECT_NEAR(relative_error(2.0, 1.0), 0.5, 1e-15);
  EXPECT_GT(relative_error(0.0, 1e-10), 0.0);
}

class FpBitsAllBits : public ::testing::TestWithParam<int> {};

TEST_P(FpBitsAllBits, ErrorMatchesDirectDifference) {
  const int bit = GetParam();
  for (double v : {1.25, -3.75, 1e-8, 123456.789}) {
    const double flipped = flip_bit(v, bit);
    if (std::isfinite(flipped)) {
      EXPECT_DOUBLE_EQ(bit_flip_error(v, bit), std::fabs(flipped - v));
    } else {
      EXPECT_TRUE(flip_is_nonfinite(v, bit));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBits, FpBitsAllBits,
                         ::testing::Range(0, kBitsPerValue));

}  // namespace
}  // namespace ftb::fi
