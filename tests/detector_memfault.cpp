// Memory-resident and multi-bit burst fault models (fi/memfault.h): the
// encoding round-trips, injected runs are deterministic, and campaigns over
// the mode-tagged id space journal and resume byte-identically through the
// exact machinery trace campaigns use.
#include "fi/memfault.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/checkpoint.h"
#include "campaign/log.h"
#include "campaign/sample_space.h"
#include "campaign/sampler.h"
#include "fi/executor.h"
#include "kernels/registry.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ftb::campaign {
namespace {

std::string temp_journal(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("ftb_memfault_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".bin"))
      .string();
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct Prepared {
  explicit Prepared(const char* name)
      : program(kernels::make_program(name, kernels::Preset::kTiny)),
        golden(fi::run_golden(*program)),
        pool(2) {}
  fi::ProgramPtr program;
  fi::GoldenRun golden;
  util::ThreadPool pool;
};

/// A mixed-mode experiment list over the kernel's memory fault space:
/// single-bit mem faults interleaved with width-3 bursts, stable across
/// runs because flat indices enumerate the touch spans in execution order.
std::vector<ExperimentId> mem_ids(const fi::GoldenRun& golden,
                                  std::uint64_t count) {
  const std::uint64_t space = fi::mem_sample_space(golden.touch_sizes);
  std::vector<ExperimentId> ids;
  ids.reserve(count);
  const std::uint64_t stride = std::max<std::uint64_t>(1, space / count);
  for (std::uint64_t flat = 0; flat < space && ids.size() < count;
       flat += stride) {
    const int width = ids.size() % 2 == 0 ? 1 : 3;
    ids.push_back(encode_mem(fi::mem_fault_at(golden.touch_sizes, flat, width)));
  }
  return ids;
}

TEST(BurstMask, WidthAndClamping) {
  EXPECT_EQ(fi::burst_mask(3, 1), std::uint64_t{1} << 3);
  EXPECT_EQ(fi::burst_mask(4, 3), std::uint64_t{0b111} << 4);
  // Width 0 is promoted to a single bit.
  EXPECT_EQ(fi::burst_mask(7, 0), std::uint64_t{1} << 7);
  // A burst that would run past bit 63 truncates at the word boundary.
  EXPECT_EQ(fi::burst_mask(62, 4), std::uint64_t{3} << 62);
  EXPECT_EQ(fi::burst_mask(63, 8), std::uint64_t{1} << 63);
}

TEST(MemSampleSpace, CountsBitsAcrossTouchedSpans) {
  const std::vector<std::uint64_t> touch_sizes = {5, 0, 3};
  EXPECT_EQ(fi::mem_sample_space(touch_sizes), 64u * 8u);
  EXPECT_EQ(fi::mem_sample_space(std::vector<std::uint64_t>{}), 0u);
}

TEST(MemFaultEncoding, FlatIndexAndIdRoundTrip) {
  const std::vector<std::uint64_t> touch_sizes = {5, 0, 3};
  const std::uint64_t space = fi::mem_sample_space(touch_sizes);
  for (const int width : {1, 3}) {
    for (std::uint64_t flat = 0; flat < space; flat += 17) {
      const fi::MemFault fault = fi::mem_fault_at(touch_sizes, flat, width);
      // The fault addresses a real word of a real span.
      ASSERT_LT(fault.touch_point, touch_sizes.size());
      ASSERT_LT(fault.word, touch_sizes[fault.touch_point]);
      ASSERT_GE(fault.start_bit, 0);
      ASSERT_LT(fault.start_bit, 64);
      EXPECT_EQ(fault.width, width);

      const ExperimentId id = encode_mem(fault);
      EXPECT_FALSE(is_classic(id));
      EXPECT_EQ(mode_of(id),
                width == 1 ? FaultMode::kMem : FaultMode::kMemBurst);
      const fi::MemFault back = mem_fault_of(id);
      EXPECT_EQ(back.touch_point, fault.touch_point);
      EXPECT_EQ(back.word, fault.word);
      EXPECT_EQ(back.start_bit, fault.start_bit);
      EXPECT_EQ(back.width, fault.width);
      // The decoded fault produces the exact same injection.
      const fi::Injection injection = injection_of(id);
      EXPECT_TRUE(injection.is_memory_fault());
      EXPECT_EQ(injection.touch_point, fault.touch_point);
      EXPECT_EQ(injection.site, fault.word);
      EXPECT_EQ(injection.mask, fi::burst_mask(fault.start_bit, fault.width));
    }
  }
  // Flat indices enumerate bits-within-words-within-spans monotonically, so
  // a sorted flat sample re-encodes to a sorted, distinct id list.
  std::vector<ExperimentId> ids;
  for (std::uint64_t flat = 0; flat < space; ++flat) {
    ids.push_back(encode_mem(fi::mem_fault_at(touch_sizes, flat, 1)));
  }
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(TraceBurst, EncodesTheClampedMask) {
  const fi::Injection injection = fi::trace_burst(41, 52, 3);
  EXPECT_FALSE(injection.is_memory_fault());
  EXPECT_EQ(injection.site, 41u);
  EXPECT_EQ(injection.mask, fi::burst_mask(52, 3));
  const ExperimentId id = encode_burst(41, 52, 3);
  EXPECT_FALSE(is_classic(id));
  EXPECT_EQ(mode_of(id), FaultMode::kBurst);
  EXPECT_EQ(site_of(id), 41u);
  EXPECT_EQ(bit_of(id), 52);
  EXPECT_EQ(burst_width_of(id), 3);
}

TEST(MemFaultExecution, InjectedRunsAreDeterministic) {
  Prepared p("spmv");
  ASSERT_GT(fi::mem_sample_space(p.golden.touch_sizes), 0u)
      << "spmv announces no live spans";
  for (const ExperimentId id : mem_ids(p.golden, 12)) {
    const fi::Injection injection = injection_of(id);
    const fi::ExperimentResult first =
        fi::run_injected(*p.program, p.golden, injection);
    const fi::ExperimentResult second =
        fi::run_injected(*p.program, p.golden, injection);
    EXPECT_EQ(first.outcome, second.outcome) << id;
    EXPECT_EQ(first.crash_reason, second.crash_reason) << id;
    EXPECT_DOUBLE_EQ(first.injected_error, second.injected_error) << id;
    EXPECT_DOUBLE_EQ(first.output_error, second.output_error) << id;
    EXPECT_EQ(first.crash_site, second.crash_site) << id;
  }
}

TEST(MemFaultCampaign, JournalRoundTripIsByteIdentical) {
  Prepared p("spmv");
  const std::vector<ExperimentId> ids = mem_ids(p.golden, 40);
  ASSERT_FALSE(ids.empty());
  const auto records = run_experiments(*p.program, p.golden, ids, p.pool);

  CampaignLog log(p.program->config_key());
  log.append(records);
  log.dedupe();
  const std::string payload = log.serialize();

  const auto restored = CampaignLog::deserialize(payload);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->serialize(), payload);
  EXPECT_EQ(restored->ids(), log.ids());
  for (const ExperimentRecord& record : restored->records()) {
    EXPECT_FALSE(is_classic(record.id));
  }
}

TEST(MemFaultCampaign, CheckpointResumeIsByteIdentical) {
  // The ISSUE acceptance scenario for the new fault modes: a finished
  // mem/burst campaign journal, re-invoked, must execute nothing and leave
  // the journal bytes untouched.
  Prepared p("spmv");
  const std::vector<ExperimentId> ids = mem_ids(p.golden, 50);
  ASSERT_FALSE(ids.empty());

  CheckpointOptions options;
  options.path = temp_journal("resume");
  options.flush_every = 16;
  options.pool = &p.pool;
  const CheckpointRunResult first =
      run_campaign_checkpointed(*p.program, p.golden, ids, options);
  EXPECT_FALSE(first.resumed);
  EXPECT_EQ(first.executed, ids.size());
  const std::string bytes_after_first = file_bytes(options.path);
  ASSERT_FALSE(bytes_after_first.empty());

  const CheckpointRunResult second =
      run_campaign_checkpointed(*p.program, p.golden, ids, options);
  EXPECT_TRUE(second.resumed);
  EXPECT_EQ(second.skipped, ids.size());
  EXPECT_EQ(second.executed, 0u);
  EXPECT_EQ(file_bytes(options.path), bytes_after_first);
  EXPECT_EQ(second.log.serialize(), first.log.serialize());
  std::filesystem::remove(options.path);
}

TEST(MemFaultCampaign, NonClassicRecordsNeverFeedTheBoundary) {
  // A log carrying extra mem/burst records must rebuild the exact same
  // silent-corruption boundary as one with only the classic records: the
  // (site, bit) space is the boundary's domain and other modes are gated
  // out by is_classic().
  Prepared p("spmv");
  util::Rng rng(7);
  const std::vector<ExperimentId> classic_ids =
      sample_uniform(rng, p.golden.sample_space_size(), 300);
  const auto classic_records =
      run_experiments(*p.program, p.golden, classic_ids, p.pool);
  std::vector<ExperimentId> extra_ids = mem_ids(p.golden, 30);
  extra_ids.push_back(encode_burst(3, 20, 4));
  const auto extra_records =
      run_experiments(*p.program, p.golden, extra_ids, p.pool);

  CampaignLog classic_only(p.program->config_key());
  classic_only.append(classic_records);
  classic_only.dedupe();
  CampaignLog mixed(p.program->config_key());
  mixed.append(classic_records);
  mixed.append(extra_records);
  mixed.dedupe();
  ASSERT_GT(mixed.size(), classic_only.size());

  boundary::AccumulatorOptions options;
  options.filter = true;
  const auto from_classic = boundary_from_log(*p.program, p.golden,
                                              classic_only, options, p.pool);
  const auto from_mixed =
      boundary_from_log(*p.program, p.golden, mixed, options, p.pool);
  ASSERT_EQ(from_classic.sites(), from_mixed.sites());
  for (std::size_t site = 0; site < from_classic.sites(); ++site) {
    EXPECT_DOUBLE_EQ(from_classic.threshold(site), from_mixed.threshold(site))
        << site;
  }
}

}  // namespace
}  // namespace ftb::campaign
