#include "fi/phase_map.h"

#include <gtest/gtest.h>

#include "boundary/report.h"
#include "fi/executor.h"
#include "kernels/registry.h"

namespace ftb::fi {
namespace {

TEST(PhaseMap, NoMarksYieldsWholeProgram) {
  const PhaseMap map({}, 10);
  ASSERT_EQ(map.segments().size(), 1u);
  EXPECT_EQ(map.segments()[0].name, "(whole program)");
  EXPECT_EQ(map.segments()[0].begin, 0u);
  EXPECT_EQ(map.segments()[0].end, 10u);
  EXPECT_EQ(map.phase_of(7), "(whole program)");
}

TEST(PhaseMap, MarksPartitionTheRange) {
  const std::vector<PhaseMark> marks = {{0, "a"}, {4, "b"}, {7, "c"}};
  const PhaseMap map(marks, 10);
  ASSERT_EQ(map.segments().size(), 3u);
  EXPECT_EQ(map.phase_of(0), "a");
  EXPECT_EQ(map.phase_of(3), "a");
  EXPECT_EQ(map.phase_of(4), "b");
  EXPECT_EQ(map.phase_of(6), "b");
  EXPECT_EQ(map.phase_of(7), "c");
  EXPECT_EQ(map.phase_of(9), "c");
  EXPECT_EQ(map.segment_index_of(5), 1u);
}

TEST(PhaseMap, ImplicitPrelude) {
  const std::vector<PhaseMark> marks = {{3, "late"}};
  const PhaseMap map(marks, 6);
  ASSERT_EQ(map.segments().size(), 2u);
  EXPECT_EQ(map.phase_of(0), "(prelude)");
  EXPECT_EQ(map.phase_of(2), "(prelude)");
  EXPECT_EQ(map.phase_of(3), "late");
}

TEST(PhaseMap, BackToBackMarksDropEmptyPhase) {
  const std::vector<PhaseMark> marks = {{0, "a"}, {0, "b"}, {2, "c"}};
  const PhaseMap map(marks, 4);
  ASSERT_EQ(map.segments().size(), 2u);
  EXPECT_EQ(map.segments()[0].name, "b");  // "a" was empty
  EXPECT_EQ(map.segments()[1].name, "c");
}

TEST(PhaseMap, EmptyProgram) {
  const PhaseMap map({}, 0);
  EXPECT_TRUE(map.empty());
}

class KernelPhases : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelPhases, GoldenRunRecordsOrderedCoveringPhases) {
  const ProgramPtr program =
      kernels::make_program(GetParam(), kernels::Preset::kTiny);
  const GoldenRun golden = run_golden(*program);
  ASSERT_FALSE(golden.phases.empty())
      << GetParam() << " should announce phases";
  EXPECT_EQ(golden.phases.front().begin, 0u);
  for (std::size_t i = 1; i < golden.phases.size(); ++i) {
    EXPECT_LE(golden.phases[i - 1].begin, golden.phases[i].begin);
  }
  const PhaseMap map(golden.phases, golden.trace.size());
  // Segments must tile [0, D).
  std::uint64_t cursor = 0;
  for (const auto& segment : map.segments()) {
    EXPECT_EQ(segment.begin, cursor);
    cursor = segment.end;
  }
  EXPECT_EQ(cursor, golden.trace.size());
}

INSTANTIATE_TEST_SUITE_P(InstrumentedKernels, KernelPhases,
                         ::testing::Values("cg", "lu", "fft", "stencil2d"));

TEST(KernelPhasesDetail, CgPhasesMatchLegacyMarkers) {
  const ProgramPtr program =
      kernels::make_program("cg", kernels::Preset::kTiny);
  const GoldenRun golden = run_golden(*program);
  ASSERT_EQ(golden.phases.size(), 3u);
  EXPECT_EQ(golden.phases[0].name, "zero-init");
  EXPECT_EQ(golden.phases[1].name, "setup");
  EXPECT_EQ(golden.phases[2].name, "iterations");
}

TEST(PhaseReportRender, ProducesRowsPerPhase) {
  const ProgramPtr program =
      kernels::make_program("fft", kernels::Preset::kTiny);
  const GoldenRun golden = run_golden(*program);
  const PhaseMap map(golden.phases, golden.trace.size());
  const boundary::FaultToleranceBoundary boundary(
      std::vector<double>(golden.trace.size(), 1e-6));
  const auto report =
      boundary::phase_report(map, boundary, golden.trace);
  EXPECT_EQ(report.size(), map.segments().size());
  for (const auto& row : report) {
    EXPECT_GT(row.sites(), 0u);
    EXPECT_DOUBLE_EQ(row.informed_fraction, 1.0);
    EXPECT_DOUBLE_EQ(row.median_threshold, 1e-6);
    EXPECT_FALSE(row.mean_true_sdc.has_value());
  }
  const std::string text = boundary::render_phase_report(report);
  EXPECT_NE(text.find("row-ffts-1"), std::string::npos);
  EXPECT_NE(text.find("transpose-out"), std::string::npos);
}

TEST(PhaseReportRender, IncludesTruthColumnWhenProvided) {
  const ProgramPtr program =
      kernels::make_program("stencil2d", kernels::Preset::kTiny);
  const GoldenRun golden = run_golden(*program);
  const PhaseMap map(golden.phases, golden.trace.size());
  const boundary::FaultToleranceBoundary boundary(
      std::vector<double>(golden.trace.size(), 0.0));
  const std::vector<double> truth(golden.trace.size(), 0.25);
  const auto report = boundary::phase_report(map, boundary, golden.trace, truth);
  for (const auto& row : report) {
    ASSERT_TRUE(row.mean_true_sdc.has_value());
    EXPECT_DOUBLE_EQ(*row.mean_true_sdc, 0.25);
  }
  EXPECT_NE(boundary::render_phase_report(report).find("true SDC"),
            std::string::npos);
}

}  // namespace
}  // namespace ftb::fi
