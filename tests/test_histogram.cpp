#include "util/histogram.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace ftb::util {
namespace {

TEST(Histogram, BasicBinning) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);   // bin 0
  h.add(0.99);  // bin 0
  h.add(1.0);   // bin 1
  h.add(9.99);  // bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, ClosedUpperEndpoint) {
  Histogram h(0.0, 1.0, 4);
  h.add(1.0);  // exactly hi -> last bin, not overflow
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(-1.0, 1.0, 4);
  h.add(-2.0);
  h.add(2.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);  // NaN counts as out-of-range
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdgesAndCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 5.0);
}

TEST(Histogram, Fraction) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  h.add(0.2);
  h.add(0.8);
  EXPECT_NEAR(h.fraction(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.fraction(1), 1.0 / 3.0, 1e-12);
}

TEST(Histogram, AddAllAndRender) {
  Histogram h(-0.5, 0.5, 5);
  const std::vector<double> values = {0.0, 0.0, 0.0, -0.4, 0.4};
  h.add_all(values);
  EXPECT_EQ(h.total(), 5u);
  const std::string text = h.render(30);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('3'), std::string::npos);  // the middle-bin count
}

class HistogramEdgeSweep : public ::testing::TestWithParam<int> {};

TEST_P(HistogramEdgeSweep, ValuesLandInTheirComputedBin) {
  // Property: for any bin b, bin_lo(b) falls into bin b and a value just
  // below bin_hi(b) falls into bin b as well.
  const int bins = GetParam();
  Histogram h(-3.0, 7.0, static_cast<std::size_t>(bins));
  for (int b = 0; b < bins; ++b) {
    Histogram fresh(-3.0, 7.0, static_cast<std::size_t>(bins));
    fresh.add(fresh.bin_lo(b));
    fresh.add(std::nextafter(fresh.bin_hi(b), fresh.bin_lo(b)));
    EXPECT_EQ(fresh.count(b), 2u) << "bins=" << bins << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(BinCounts, HistogramEdgeSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 33));

}  // namespace
}  // namespace ftb::util
