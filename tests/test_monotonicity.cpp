// Property tests for the paper's Section 5 analysis: for averaging stencils
// and (repeated) matrix-vector products the output error is a *linear*
// function of an injected perturbation, f(eps) = C * eps, hence monotone.
// We verify linearity and monotonicity empirically through the executor,
// which exercises the exact code path fault injection uses.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "fi/executor.h"
#include "kernels/blas1.h"
#include "kernels/spmv.h"
#include "kernels/stencil.h"

namespace ftb::kernels {
namespace {

double output_error_for_delta(const fi::Program& program,
                              const fi::GoldenRun& golden, std::uint64_t site,
                              double delta) {
  const fi::ExperimentResult result = fi::run_injected(
      program, golden, fi::Injection::add_delta(site, delta));
  return result.output_error;
}

class StencilLinearity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StencilLinearity, OutputErrorScalesLinearly) {
  StencilConfig config;
  config.nx = config.ny = 6;
  config.iterations = 4;
  const StencilProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);
  const std::uint64_t site =
      GetParam() % golden.dynamic_instructions();

  const double e1 = output_error_for_delta(program, golden, site, 1e-4);
  const double e2 = output_error_for_delta(program, golden, site, 2e-4);
  const double e4 = output_error_for_delta(program, golden, site, 4e-4);
  if (e1 == 0.0) {
    // The perturbation died entirely (value overwritten before use): then
    // scaling it must keep the error at zero.
    EXPECT_EQ(e2, 0.0);
    EXPECT_EQ(e4, 0.0);
  } else {
    EXPECT_NEAR(e2 / e1, 2.0, 1e-6);
    EXPECT_NEAR(e4 / e1, 4.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sites, StencilLinearity,
                         ::testing::Values(0u, 7u, 36u, 77u, 120u, 159u));

class MatvecLinearity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatvecLinearity, OutputErrorScalesLinearly) {
  MatvecConfig config;
  config.n = 8;
  config.repeats = 3;
  const MatvecProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);
  const std::uint64_t site = GetParam() % golden.dynamic_instructions();

  const double e1 = output_error_for_delta(program, golden, site, 1e-5);
  const double e3 = output_error_for_delta(program, golden, site, 3e-5);
  if (e1 == 0.0) {
    EXPECT_EQ(e3, 0.0);
  } else {
    // Repeated products accumulate rounding; linearity holds to ~1e-3.
    EXPECT_NEAR(e3 / e1, 3.0, 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Sites, MatvecLinearity,
                         ::testing::Values(0u, 5u, 31u, 64u, 70u, 87u));

TEST(Monotonicity, StencilErrorIsMonotoneInEpsilon) {
  StencilConfig config;
  config.nx = config.ny = 5;
  config.iterations = 3;
  const StencilProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);

  for (std::uint64_t site :
       {std::uint64_t{3}, golden.dynamic_instructions() / 2,
        golden.dynamic_instructions() - 2}) {
    double previous = 0.0;
    for (double eps : {1e-8, 1e-6, 1e-4, 1e-2, 1.0}) {
      const double error = output_error_for_delta(program, golden, site, eps);
      EXPECT_GE(error + 1e-15, previous)
          << "site " << site << " eps " << eps;
      previous = error;
    }
  }
}

TEST(Monotonicity, StencilConstantMatchesTheory) {
  // One Jacobi sweep after the injected error spreads it with coefficient
  // 0.2 to each neighbour; injecting into the *last* sweep's output leaves
  // the error in exactly one output cell: f(eps) = eps (C = 1).
  StencilConfig config;
  config.nx = config.ny = 4;
  config.iterations = 2;
  const StencilProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);
  const std::uint64_t last_site = golden.dynamic_instructions() - 1;
  const double eps = 1e-3;
  EXPECT_NEAR(output_error_for_delta(program, golden, last_site, eps), eps,
              1e-12);
}

TEST(Monotonicity, StencilPenultimateSweepMatchesCoefficient) {
  // Injecting into a cell produced by the second-to-last sweep: the final
  // sweep averages it into its own cell with weight 0.2, so the L-inf
  // output error is 0.2 * eps (the corrupted cell itself is overwritten).
  StencilConfig config;
  config.nx = config.ny = 4;
  config.iterations = 2;
  const StencilProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);
  // Sites: 16 init + 16 sweep1 + 16 sweep2.  Pick the middle of sweep 1.
  const std::uint64_t site = 16 + 5;  // interior cell of sweep 1
  const double eps = 1e-3;
  EXPECT_NEAR(output_error_for_delta(program, golden, site, eps), 0.2 * eps,
              1e-12);
}


class SpmvLinearity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpmvLinearity, OutputErrorScalesLinearly) {
  // Section 5: sparse matrix-vector products have f(eps) = C * eps.
  SpmvConfig config;
  config.nx = config.ny = 4;
  config.repeats = 5;
  const SpmvProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);
  const std::uint64_t site = GetParam() % golden.dynamic_instructions();

  const double e1 = output_error_for_delta(program, golden, site, 1e-5);
  const double e4 = output_error_for_delta(program, golden, site, 4e-5);
  if (e1 == 0.0) {
    EXPECT_EQ(e4, 0.0);
  } else {
    EXPECT_NEAR(e4 / e1, 4.0, 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Sites, SpmvLinearity,
                         ::testing::Values(0u, 23u, 64u, 90u, 130u, 170u));

TEST(Monotonicity, SpmvErrorIsMonotoneInEpsilon) {
  SpmvConfig config;
  config.nx = config.ny = 4;
  config.repeats = 4;
  const SpmvProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);
  for (std::uint64_t site :
       {std::uint64_t{10}, golden.dynamic_instructions() / 2,
        golden.dynamic_instructions() - 3}) {
    double previous = 0.0;
    for (double eps : {1e-8, 1e-5, 1e-2, 1.0}) {
      const double error = output_error_for_delta(program, golden, site, eps);
      EXPECT_GE(error + 1e-15, previous) << "site " << site;
      previous = error;
    }
  }
}

}  // namespace
}  // namespace ftb::kernels
