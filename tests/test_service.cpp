// End-to-end ftb_served tests: an in-process Server + Service pair on an
// ephemeral loopback port, driven by the real net::Client.  Covers the
// query plane, the campaign plane (submit -> progress stream -> done ->
// immediately queryable), hazard campaigns whose worker deaths must stay
// invisible to the client, the slow-loris idle timeout, decode-error
// diagnostics, and drain-with-resumable-journal semantics.
#include "service/service.h"

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/checkpoint.h"
#include "campaign/log.h"
#include "campaign/sampler.h"
#include "kernels/registry.h"
#include "net/client.h"
#include "net/socket.h"
#include "util/rng.h"

namespace ftb::service {
namespace {

namespace fs = std::filesystem;

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!net::net_supported()) GTEST_SKIP() << "no socket support";
    dir_ = fs::temp_directory_path() /
           ("ftb_service_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    stop();
    fs::remove_all(dir_);
  }

  void start(std::uint32_t idle_timeout_ms = 30000,
             std::size_t max_queue = 8) {
    ServiceOptions options;
    options.store_dir = dir_.string();
    options.max_queue = max_queue;
    options.telemetry = &telemetry_;
    telemetry_.set_enabled(true);
    service_ = std::make_unique<Service>(options);
    net::ServerOptions server_options;
    server_options.idle_timeout_ms = idle_timeout_ms;
    server_options.telemetry = &telemetry_;
    server_ = std::make_unique<net::Server>(*service_, server_options);
    service_->attach(server_.get());
    loop_ = std::thread([this] { server_->run(); });
  }

  void stop() {
    if (server_ == nullptr) return;
    service_->request_shutdown();
    if (loop_.joinable()) loop_.join();
    server_.reset();
    service_.reset();
  }

  net::Client make_client(std::uint32_t recv_timeout_ms = 30000) {
    net::ClientOptions options;
    options.port = server_->port();
    options.recv_timeout_ms = recv_timeout_ms;
    return net::Client(options);
  }

  /// Publishes a trivially-known boundary for daxpy@tiny@<seed>.
  void publish_daxpy(std::uint64_t seed, double threshold = 1.0) {
    const fi::ProgramPtr program =
        kernels::make_program("daxpy", kernels::Preset::kTiny);
    const fi::GoldenRun golden = fi::run_golden(*program);
    const boundary::FaultToleranceBoundary built(
        std::vector<double>(golden.dynamic_instructions(), threshold));
    std::string error;
    ASSERT_TRUE(service_->store().publish({"daxpy", "tiny", seed}, built,
                                          &error))
        << error;
  }

  /// Drives one submit and collects the whole stream.
  struct SubmitOutcome {
    std::optional<CampaignAccepted> accepted;
    std::vector<CampaignProgress> progress;
    std::optional<CampaignDone> done;
    std::string error;
  };

  SubmitOutcome submit_and_wait(net::Client& client,
                                const SubmitCampaignReq& req,
                                int stop_after_progress = -1) {
    SubmitOutcome outcome;
    if (!client.connect(&outcome.error)) return outcome;
    if (!client.send(make_submit_campaign(req), &outcome.error)) {
      return outcome;
    }
    const auto accepted_frame = client.recv(&outcome.error, 60000);
    if (!accepted_frame.has_value()) return outcome;
    outcome.accepted = parse_campaign_accepted(*accepted_frame);
    if (!outcome.accepted.has_value()) {
      if (const auto err = parse_error(*accepted_frame)) {
        outcome.error = err->message;
      }
      return outcome;
    }
    for (;;) {
      const auto frame = client.recv(&outcome.error, 120000);
      if (!frame.has_value()) return outcome;
      if (const auto progress = parse_campaign_progress(*frame)) {
        outcome.progress.push_back(*progress);
        if (stop_after_progress >= 0 &&
            static_cast<int>(outcome.progress.size()) >= stop_after_progress) {
          service_->request_shutdown();
          stop_after_progress = -1;  // only once
        }
        continue;
      }
      outcome.done = parse_campaign_done(*frame);
      return outcome;
    }
  }

  telemetry::Telemetry telemetry_;
  std::unique_ptr<Service> service_;
  std::unique_ptr<net::Server> server_;
  std::thread loop_;
  fs::path dir_;
};

TEST_F(ServiceTest, PingQueryPlaneAndErrors) {
  start();
  publish_daxpy(1);
  net::Client client = make_client();

  std::string error;
  auto reply = client.call(make_ping(), &error);
  ASSERT_TRUE(reply.has_value()) << error;
  EXPECT_EQ(reply->type, static_cast<std::uint32_t>(MsgType::kPong));

  // list
  reply = client.call(make_list_boundaries(), &error);
  ASSERT_TRUE(reply.has_value()) << error;
  const auto list = parse_boundary_list_ok(*reply, &error);
  ASSERT_TRUE(list.has_value()) << error;
  ASSERT_EQ(list->entries.size(), 1u);
  EXPECT_EQ(list->entries[0].key, "daxpy@tiny@1");

  // predict_flip on a known-threshold boundary
  PredictFlipReq flip;
  flip.key = "daxpy@tiny@1";
  flip.site = 3;
  flip.bit = 0;
  reply = client.call(make_predict_flip(flip), &error);
  ASSERT_TRUE(reply.has_value()) << error;
  const auto flip_ok = parse_predict_flip_ok(*reply, &error);
  ASSERT_TRUE(flip_ok.has_value()) << error;
  EXPECT_DOUBLE_EQ(flip_ok->threshold, 1.0);

  // predict_site
  PredictSiteReq site;
  site.key = "daxpy@tiny@1";
  site.site = 3;
  reply = client.call(make_predict_site(site), &error);
  ASSERT_TRUE(reply.has_value()) << error;
  const auto site_ok = parse_predict_site_ok(*reply, &error);
  ASSERT_TRUE(site_ok.has_value()) << error;
  EXPECT_EQ(site_ok->masked + site_ok->sdc + site_ok->crash, 64u);

  // phase report
  PhaseReportReq report;
  report.key = "daxpy@tiny@1";
  reply = client.call(make_phase_report(report), &error);
  ASSERT_TRUE(reply.has_value()) << error;
  const auto report_ok = parse_phase_report_ok(*reply, &error);
  ASSERT_TRUE(report_ok.has_value()) << error;
  EXPECT_FALSE(report_ok->rows.empty());

  // stats is valid JSON-ish and mentions the schema
  reply = client.call(make_stats(), &error);
  ASSERT_TRUE(reply.has_value()) << error;
  const auto stats = parse_stats_ok(*reply, &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_NE(stats->metrics_json.find("ftb.telemetry.metrics/1"),
            std::string::npos);

  // unknown key and out-of-range site produce Error frames
  flip.key = "nope@tiny@1";
  reply = client.call(make_predict_flip(flip), &error);
  ASSERT_TRUE(reply.has_value()) << error;
  ASSERT_TRUE(parse_error(*reply).has_value());
  flip.key = "daxpy@tiny@1";
  flip.site = 1u << 20;
  reply = client.call(make_predict_flip(flip), &error);
  ASSERT_TRUE(reply.has_value()) << error;
  const auto range_error = parse_error(*reply);
  ASSERT_TRUE(range_error.has_value());
  EXPECT_NE(range_error->message.find("out of range"), std::string::npos);
}

TEST_F(ServiceTest, SubmitRunsPublishesAndIsImmediatelyQueryable) {
  start();
  net::Client client = make_client();
  SubmitCampaignReq req;
  req.kernel = "daxpy";
  req.preset = "tiny";
  req.seed = 1;
  req.batch = 300;
  req.workers = 1;
  req.flush_every = 100;
  const SubmitOutcome outcome = submit_and_wait(client, req);
  ASSERT_TRUE(outcome.accepted.has_value()) << outcome.error;
  ASSERT_TRUE(outcome.done.has_value()) << outcome.error;
  EXPECT_TRUE(outcome.done->ok) << outcome.done->error;
  EXPECT_FALSE(outcome.progress.empty());
  EXPECT_EQ(outcome.done->store_key, "daxpy@tiny@1");
  EXPECT_EQ(outcome.done->executed, 300u);
  // Progress is monotonic and pre-done totals line up.
  for (std::size_t i = 1; i < outcome.progress.size(); ++i) {
    EXPECT_GE(outcome.progress[i].done, outcome.progress[i - 1].done);
  }

  // The published boundary is immediately visible on the same connection.
  std::string error;
  PredictSiteReq site;
  site.key = "daxpy@tiny@1";
  site.site = 0;
  const auto reply = client.call(make_predict_site(site), &error);
  ASSERT_TRUE(reply.has_value()) << error;
  EXPECT_TRUE(parse_predict_site_ok(*reply).has_value());

  // The journal and artifact are on disk next to each other.
  EXPECT_TRUE(fs::exists(dir_ / "daxpy@tiny@1.clog"));
  EXPECT_TRUE(fs::exists(dir_ / "daxpy@tiny@1.boundary"));
}

// The ISSUE acceptance scenario: a detector-enabled *threaded* preset is
// servable end-to-end.  The campaign stream reports detected counts, and
// the published entry answers phase-report queries with per-phase detector
// coverage.
TEST_F(ServiceTest, DetectorThreadedCampaignServesCoverage) {
  start();
  net::Client client = make_client();
  SubmitCampaignReq req;
  req.kernel = "spmv+t2+det";
  req.preset = "tiny";
  req.seed = 1;
  req.batch = 400;
  req.workers = 1;
  req.flush_every = 200;
  const SubmitOutcome outcome = submit_and_wait(client, req);
  ASSERT_TRUE(outcome.accepted.has_value()) << outcome.error;
  ASSERT_TRUE(outcome.done.has_value()) << outcome.error;
  EXPECT_TRUE(outcome.done->ok) << outcome.done->error;
  EXPECT_EQ(outcome.done->store_key, "spmv+t2+det@tiny@1");
  // The checksum detector catches a healthy share of SpMV's corruptions.
  EXPECT_GT(outcome.done->detected, 0u);
  EXPECT_GT(outcome.done->masked, 0u);

  std::string error;
  PhaseReportReq report;
  report.key = "spmv+t2+det@tiny@1";
  const auto reply = client.call(make_phase_report(report), &error);
  ASSERT_TRUE(reply.has_value()) << error;
  const auto report_ok = parse_phase_report_ok(*reply, &error);
  ASSERT_TRUE(report_ok.has_value()) << error;
  ASSERT_FALSE(report_ok->rows.empty());
  bool any_coverage = false;
  for (const auto& row : report_ok->rows) {
    if (row.mean_detected_coverage.value_or(0.0) > 0.0) any_coverage = true;
  }
  EXPECT_TRUE(any_coverage);
}

// A campaign over the hazard kernel kills sandbox workers (signal deaths,
// heartbeat hangs) as a matter of course.  None of that mortality may
// surface to the client as a failure -- only as telemetry-style counts in
// the stream.
TEST_F(ServiceTest, HazardWorkerDeathsAreInvisibleToTheClient) {
  start();
  net::Client client = make_client();
  SubmitCampaignReq req;
  req.kernel = "hazard";
  req.preset = "tiny";
  req.seed = 3;
  req.batch = 200;
  req.workers = 2;
  req.flush_every = 64;
  req.timeout_ms = 1000;
  const SubmitOutcome outcome = submit_and_wait(client, req);
  ASSERT_TRUE(outcome.accepted.has_value()) << outcome.error;
  ASSERT_TRUE(outcome.done.has_value()) << outcome.error;
  EXPECT_TRUE(outcome.done->ok) << outcome.done->error;
  EXPECT_EQ(outcome.done->executed + outcome.done->skipped, 200u);
  EXPECT_EQ(outcome.done->store_key, "hazard@tiny@3");
  // The campaign must actually have drawn blood -- otherwise this test
  // proves nothing.  Deaths/hangs/crashes appear only as counts in the
  // stream; the job itself completed and published.
  EXPECT_GT(outcome.done->crash + outcome.done->hang +
                outcome.done->worker_deaths + outcome.done->worker_hangs,
            0u);
}

TEST_F(ServiceTest, SubmitUnknownKernelFailsTheJobNotTheConnection) {
  start();
  net::Client client = make_client();
  SubmitCampaignReq req;
  req.kernel = "nosuchkernel";
  req.batch = 10;
  const SubmitOutcome outcome = submit_and_wait(client, req);
  ASSERT_TRUE(outcome.accepted.has_value()) << outcome.error;
  ASSERT_TRUE(outcome.done.has_value()) << outcome.error;
  EXPECT_FALSE(outcome.done->ok);
  EXPECT_FALSE(outcome.done->error.empty());
  // The connection survives: the query plane still answers.
  std::string error;
  const auto reply = client.call(make_ping(), &error);
  ASSERT_TRUE(reply.has_value()) << error;
  EXPECT_EQ(reply->type, static_cast<std::uint32_t>(MsgType::kPong));
}

TEST_F(ServiceTest, FullQueueAnswersSubmissionWithBusy) {
  start(30000, /*max_queue=*/0);
  net::Client client = make_client();
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;
  SubmitCampaignReq req;
  req.kernel = "daxpy";
  req.batch = 10;
  ASSERT_TRUE(client.send(make_submit_campaign(req), &error)) << error;
  const auto reply = client.recv(&error, 30000);
  ASSERT_TRUE(reply.has_value()) << error;
  // A full queue is a load condition, not a protocol error: the reply is
  // Busy (retryable, with a retry-after hint), not Error.
  const auto rejected = parse_busy(*reply, &error);
  ASSERT_TRUE(rejected.has_value()) << error;
  EXPECT_NE(rejected->message.find("queue is full"), std::string::npos)
      << rejected->message;
  EXPECT_GT(rejected->retry_after_ms, 0u);
}

// A peer that sends half a frame header and stalls must be disconnected by
// the idle timeout, not pin a connection slot forever.
TEST_F(ServiceTest, SlowLorisIsClosedByIdleTimeout) {
  start(/*idle_timeout_ms=*/200);
  std::string error;
  net::Fd fd = net::connect_tcp("127.0.0.1", server_->port(), &error);
  ASSERT_TRUE(fd.valid()) << error;
  const std::uint8_t partial[6] = {0x46, 0x54, 0x42, 0x50, 0x01, 0x00};
  ASSERT_TRUE(net::send_all(fd.get(), partial, sizeof(partial), &error))
      << error;
  // The server should close us within the timeout plus a couple of sweep
  // periods; recv returning 0 means orderly close.
  std::uint8_t buf[64];
  const long n = net::recv_some(fd.get(), buf, sizeof(buf), 5000, &error);
  EXPECT_EQ(n, 0) << "server did not close the idle connection: " << error;
}

TEST_F(ServiceTest, GarbageBytesGetDiagnosticThenClose) {
  start();
  std::string error;
  net::Fd fd = net::connect_tcp("127.0.0.1", server_->port(), &error);
  ASSERT_TRUE(fd.valid()) << error;
  std::vector<std::uint8_t> garbage(64, 0xee);
  ASSERT_TRUE(net::send_all(fd.get(), garbage.data(), garbage.size(), &error))
      << error;
  // Expect one Error frame with a diagnostic, then EOF.
  net::FrameDecoder decoder;
  net::Frame frame;
  bool got_error_frame = false;
  bool closed = false;
  for (int i = 0; i < 50 && !closed; ++i) {
    std::uint8_t buf[1024];
    const long n = net::recv_some(fd.get(), buf, sizeof(buf), 5000, &error);
    if (n <= 0) {
      closed = (n == 0);
      break;
    }
    decoder.feed(buf, static_cast<std::size_t>(n));
    while (decoder.pop(&frame) == net::FrameDecoder::Status::kFrame) {
      const auto err = parse_error(frame);
      ASSERT_TRUE(err.has_value());
      EXPECT_FALSE(err->message.empty());
      got_error_frame = true;
    }
  }
  EXPECT_TRUE(got_error_frame);
  EXPECT_TRUE(closed);
}

// Drain mid-campaign: the client gets a stopped CampaignDone, the journal
// on disk is resumable, and finishing it off-line converges to the exact
// bytes an uninterrupted campaign produces.
TEST_F(ServiceTest, DrainLeavesResumableJournalThatConvergesByteIdentically) {
  start();
  net::Client client = make_client();
  SubmitCampaignReq req;
  req.kernel = "daxpy";
  req.preset = "tiny";
  req.seed = 1;
  req.batch = 2000;
  req.workers = 1;
  req.flush_every = 50;  // many chunk edges to stop at
  const SubmitOutcome outcome =
      submit_and_wait(client, req, /*stop_after_progress=*/1);
  ASSERT_TRUE(outcome.accepted.has_value()) << outcome.error;
  ASSERT_TRUE(outcome.done.has_value()) << outcome.error;

  if (loop_.joinable()) loop_.join();  // drain finishes the server loop

  const std::string journal = (dir_ / "daxpy@tiny@1.clog").string();
  ASSERT_TRUE(fs::exists(journal));

  // The drain may have raced job completion; both terminal states must be
  // coherent.  The interesting branch is stopped=true.
  if (outcome.done->ok) {
    GTEST_SKIP() << "job finished before the drain hit a chunk edge";
  }
  ASSERT_TRUE(outcome.done->stopped) << outcome.done->error;
  EXPECT_NE(outcome.done->error.find("resumable"), std::string::npos);

  // Resume exactly the way ftb_analyze campaign --resume samples.
  const fi::ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  util::Rng rng(req.seed);
  const auto ids =
      campaign::sample_uniform(rng, golden.sample_space_size(), req.batch);

  campaign::CheckpointOptions resume;
  resume.path = journal;
  resume.flush_every = req.flush_every;
  const auto resumed =
      campaign::run_campaign_checkpointed(*program, golden, ids, resume);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_GT(resumed.skipped, 0u);

  // Reference: the same campaign uninterrupted, fresh journal.
  campaign::CheckpointOptions fresh;
  fresh.path = (dir_ / "reference.clog").string();
  fresh.flush_every = req.flush_every;
  const auto reference =
      campaign::run_campaign_checkpointed(*program, golden, ids, fresh);
  EXPECT_EQ(resumed.log.serialize(), reference.log.serialize());
}

}  // namespace
}  // namespace ftb::service
