#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fi/executor.h"
#include "kernels/blas1.h"
#include "kernels/cg.h"
#include "kernels/fft.h"
#include "kernels/lu.h"
#include "kernels/registry.h"
#include "kernels/stencil.h"
#include "linalg/complexv.h"
#include "linalg/csr.h"
#include "linalg/dense.h"
#include "util/rng.h"

namespace ftb::kernels {
namespace {

// ---------------------------------------------------------------------------
// Generic contracts every registered kernel must satisfy.
// ---------------------------------------------------------------------------

class KernelContract : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelContract, GoldenRunIsDeterministic) {
  const fi::ProgramPtr program = make_program(GetParam(), Preset::kTiny);
  const fi::GoldenRun a = fi::run_golden(*program);
  const fi::GoldenRun b = fi::run_golden(*program);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.output, b.output);
}

TEST_P(KernelContract, TraceIsFiniteAndNonEmpty) {
  const fi::ProgramPtr program = make_program(GetParam(), Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  EXPECT_GT(golden.dynamic_instructions(), 0u);
  EXPECT_GT(golden.output.size(), 0u);
  for (double v : golden.trace) EXPECT_TRUE(std::isfinite(v));
  for (double v : golden.output) EXPECT_TRUE(std::isfinite(v));
}

TEST_P(KernelContract, InjectedRunKeepsInstructionCount) {
  // No data-dependent control flow: a faulty run executes the same dynamic
  // instruction sequence (unless it crashes).
  const fi::ProgramPtr program = make_program(GetParam(), Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  const std::uint64_t d = golden.dynamic_instructions();
  for (std::uint64_t site : {std::uint64_t{0}, d / 2, d - 1}) {
    fi::Tracer tracer = fi::Tracer::injector(fi::Injection::bit_flip(site, 30));
    try {
      (void)program->run(tracer);
      EXPECT_EQ(tracer.steps(), d) << "site " << site;
    } catch (const fi::CrashSignal&) {
      // Crash before completion is a legal outcome.
    }
  }
}

TEST_P(KernelContract, ZeroPerturbationIsMasked) {
  // Injecting a zero-magnitude delta must always be Masked: the computation
  // is bitwise identical to the golden run.
  const fi::ProgramPtr program = make_program(GetParam(), Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  const fi::ExperimentResult result = fi::run_injected(
      *program, golden, fi::Injection::add_delta(golden.trace.size() / 2, 0.0));
  EXPECT_EQ(result.outcome, fi::Outcome::kMasked);
  EXPECT_EQ(result.output_error, 0.0);
}

TEST_P(KernelContract, ConfigKeyIsStable) {
  const fi::ProgramPtr a = make_program(GetParam(), Preset::kTiny);
  const fi::ProgramPtr b = make_program(GetParam(), Preset::kTiny);
  const fi::ProgramPtr c = make_program(GetParam(), Preset::kDefault);
  EXPECT_EQ(a->config_key(), b->config_key());
  EXPECT_NE(a->config_key(), c->config_key());
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelContract,
                         ::testing::ValuesIn(program_names()));

TEST(Registry, RejectsUnknownNames) {
  EXPECT_THROW(make_program("nope", Preset::kTiny), std::invalid_argument);
  EXPECT_THROW(preset_from_string("huge"), std::invalid_argument);
}

TEST(Registry, PresetRoundTrip) {
  EXPECT_EQ(preset_from_string("tiny"), Preset::kTiny);
  EXPECT_EQ(preset_from_string("paper"), Preset::kPaper);
  EXPECT_STREQ(to_string(Preset::kDefault), "default");
}

// ---------------------------------------------------------------------------
// CG: the solver must actually solve the Poisson system.
// ---------------------------------------------------------------------------

TEST(CgKernel, SolvesThePoissonSystem) {
  CgConfig config;
  config.nx = config.ny = 5;
  config.iterations = 25;  // enough for full convergence at n = 25
  const CgProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);

  // Rebuild A and b exactly as the kernel does and check the residual.
  const linalg::CsrMatrix a = linalg::CsrMatrix::poisson5(5, 5);
  util::Rng rhs_rng(config.rhs_seed);
  std::vector<double> b(25);
  for (double& v : b) v = rhs_rng.next_double(-1.0, 1.0);
  const std::vector<double> ax = a.multiply(golden.output);
  EXPECT_LT(linalg::linf_distance(ax, b), 1e-8);
}

TEST(CgKernel, PhaseMarkersAreOrderedAndInRange) {
  CgConfig config;
  const CgProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);
  const auto markers = program.phase_markers();
  EXPECT_EQ(markers.zero_init, 0u);
  EXPECT_LT(markers.setup, markers.iterations);
  EXPECT_LT(markers.iterations, golden.dynamic_instructions());
}

TEST(CgKernel, FirstPhaseInitialisesZeros) {
  CgConfig config;
  const CgProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);
  const auto markers = program.phase_markers();
  for (std::uint64_t i = 0; i < markers.setup; ++i) {
    EXPECT_EQ(golden.trace[i], 0.0) << "site " << i;
  }
}

// ---------------------------------------------------------------------------
// LU: blocked result must equal the reference unblocked factorisation.
// ---------------------------------------------------------------------------

class LuBlockedSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(LuBlockedSweep, MatchesReferenceFactorisation) {
  const auto [n, block] = GetParam();
  LuConfig config;
  config.n = n;
  config.block = block;
  const LuProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);

  util::Rng rng(config.matrix_seed);
  const linalg::DenseMatrix source =
      linalg::DenseMatrix::random_diagonally_dominant(n, rng);
  const linalg::DenseMatrix reference = linalg::lu_factor_reference(source);

  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      worst = std::fmax(
          worst, std::fabs(golden.output[i * n + j] - reference.at(i, j)));
    }
  }
  EXPECT_LT(worst, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LuBlockedSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{4, 2},
                      std::pair<std::size_t, std::size_t>{8, 4},
                      std::pair<std::size_t, std::size_t>{8, 8},
                      std::pair<std::size_t, std::size_t>{12, 4},
                      std::pair<std::size_t, std::size_t>{16, 8}));

TEST(LuKernel, DynamicInstructionCountFormula) {
  // init n^2 + factor updates: sum_k [(n-k-1) L writes + trailing writes].
  LuConfig config;
  config.n = 8;
  config.block = 4;
  const LuProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);
  // The blocked schedule writes each trailing element once per block step it
  // participates in; the exact count is implementation-defined, but it must
  // lie between the unblocked LU bound and the init + full-matrix bound.
  const std::uint64_t n = config.n;
  EXPECT_GT(golden.dynamic_instructions(), n * n);          // more than init
  EXPECT_LT(golden.dynamic_instructions(), n * n + n * n * n);
}

// ---------------------------------------------------------------------------
// FFT: six-step output must equal the reference DFT.
// ---------------------------------------------------------------------------

class FftShapeSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(FftShapeSweep, MatchesReferenceDft) {
  const auto [n1, n2] = GetParam();
  FftConfig config;
  config.n1 = n1;
  config.n2 = n2;
  const FftProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);

  // Reconstruct the input signal the kernel generated.
  const std::size_t n = n1 * n2;
  util::Rng rng(config.signal_seed);
  linalg::ComplexVec input(n);
  for (double& v : input.re) v = rng.next_double(-1.0, 1.0);
  for (double& v : input.im) v = rng.next_double(-1.0, 1.0);
  const linalg::ComplexVec expected = linalg::dft_reference(input);

  ASSERT_EQ(golden.output.size(), 2 * n);
  double worst = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    worst = std::fmax(worst, std::fabs(golden.output[2 * k] - expected.re[k]));
    worst =
        std::fmax(worst, std::fabs(golden.output[2 * k + 1] - expected.im[k]));
  }
  EXPECT_LT(worst, 1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FftShapeSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{4, 8},
                      std::pair<std::size_t, std::size_t>{8, 4},
                      std::pair<std::size_t, std::size_t>{8, 8},
                      std::pair<std::size_t, std::size_t>{16, 8}));

// ---------------------------------------------------------------------------
// Stencil: averaging can never escape the initial value range.
// ---------------------------------------------------------------------------

TEST(StencilKernel, OutputBoundedByInitialRange) {
  StencilConfig config;
  const StencilProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);
  for (double v : golden.output) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(StencilKernel, SweepContractsTowardsZeroBoundary) {
  // With a zero Dirichlet frame, repeated averaging must shrink the field's
  // max magnitude monotonically.
  StencilConfig few, many;
  few.iterations = 2;
  many.iterations = 12;
  const fi::GoldenRun a = fi::run_golden(StencilProgram(few));
  const fi::GoldenRun b = fi::run_golden(StencilProgram(many));
  double max_a = 0.0, max_b = 0.0;
  for (double v : a.output) max_a = std::fmax(max_a, std::fabs(v));
  for (double v : b.output) max_b = std::fmax(max_b, std::fabs(v));
  EXPECT_LT(max_b, max_a);
}

// ---------------------------------------------------------------------------
// BLAS mini-kernels.
// ---------------------------------------------------------------------------

TEST(DaxpyKernel, MatchesDirectComputation) {
  DaxpyConfig config;
  config.n = 8;
  const DaxpyProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);

  util::Rng rng(config.seed);
  std::vector<double> x(8), y(8);
  for (double& v : x) v = rng.next_double(-1.0, 1.0);
  for (double& v : y) v = rng.next_double(-1.0, 1.0);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(golden.output[i], config.alpha * x[i] + y[i]);
  }
}

TEST(MatvecKernel, OneRepeatMatchesDense) {
  MatvecConfig config;
  config.n = 5;
  config.repeats = 1;
  const MatvecProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);

  util::Rng rng(config.seed);
  linalg::DenseMatrix a(5, 5);
  for (double& v : a.data()) {
    v = rng.next_double(-1.0, 1.0) / 5.0;
  }
  std::vector<double> y(5);
  for (double& v : y) v = rng.next_double(-1.0, 1.0);
  const std::vector<double> expected = linalg::matvec(a, y);
  EXPECT_LT(linalg::linf_distance(golden.output, expected), 1e-14);
}

}  // namespace
}  // namespace ftb::kernels
