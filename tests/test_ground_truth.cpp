#include "campaign/ground_truth.h"

#include <cstdlib>
#include <filesystem>

#include <gtest/gtest.h>

#include "kernels/blas1.h"
#include "kernels/registry.h"

namespace ftb::campaign {
namespace {

TEST(GroundTruthTable, MatchesPerExperimentRuns) {
  kernels::DaxpyConfig config;
  config.n = 4;
  const kernels::DaxpyProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);
  util::ThreadPool pool(2);

  const GroundTruth table =
      GroundTruth::compute(program, golden, pool, /*use_cache=*/false);
  EXPECT_EQ(table.sites(), golden.dynamic_instructions());
  EXPECT_EQ(table.experiments(), golden.sample_space_size());

  // Spot-check a sweep of ids against direct execution.
  for (ExperimentId id = 0; id < table.experiments(); id += 11) {
    const fi::ExperimentResult direct =
        fi::run_injected(program, golden, injection_of(id));
    EXPECT_EQ(table.outcome(id), direct.outcome) << "id " << id;
  }
}

TEST(GroundTruthTable, CountsAndProfileConsistent) {
  const fi::ProgramPtr program =
      kernels::make_program("stencil2d", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  util::ThreadPool pool(2);
  const GroundTruth table =
      GroundTruth::compute(*program, golden, pool, /*use_cache=*/false);

  const OutcomeCounts counts = table.counts();
  EXPECT_EQ(counts.total(), table.experiments());
  EXPECT_NEAR(table.overall_sdc_ratio(),
              static_cast<double>(counts.sdc) /
                  static_cast<double>(counts.total()),
              1e-12);

  const std::vector<double> profile = table.sdc_profile();
  ASSERT_EQ(profile.size(), table.sites());
  double mean = 0.0;
  for (double p : profile) mean += p;
  mean /= static_cast<double>(profile.size());
  EXPECT_NEAR(mean, table.overall_sdc_ratio(), 1e-12);
}

TEST(GroundTruthTable, CacheRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("ftb_gt_cache_" + std::to_string(::getpid()));
  ASSERT_EQ(setenv("FTB_CACHE_DIR", dir.c_str(), 1), 0);

  kernels::DaxpyConfig config;
  config.n = 4;
  const kernels::DaxpyProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);
  util::ThreadPool pool(2);

  const GroundTruth fresh =
      GroundTruth::compute(program, golden, pool, /*use_cache=*/true);
  const GroundTruth cached =
      GroundTruth::compute(program, golden, pool, /*use_cache=*/true);
  ASSERT_EQ(fresh.experiments(), cached.experiments());
  for (ExperimentId id = 0; id < fresh.experiments(); ++id) {
    ASSERT_EQ(fresh.outcome(id), cached.outcome(id)) << id;
  }

  ASSERT_EQ(setenv("FTB_CACHE_DIR", "off", 1), 0);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(SampledGroundTruthEstimate, ConvergesToExhaustiveRatio) {
  const fi::ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  util::ThreadPool pool(2);

  const GroundTruth exhaustive =
      GroundTruth::compute(*program, golden, pool, /*use_cache=*/false);
  const SampledGroundTruth sampled = estimate_ground_truth(
      *program, golden, golden.sample_space_size() / 2, 7, pool);

  EXPECT_EQ(sampled.records.size(), golden.sample_space_size() / 2);
  EXPECT_NEAR(sampled.sdc_ratio(), exhaustive.overall_sdc_ratio(), 0.06);
}

TEST(SampledGroundTruthEstimate, FullProbeEqualsExhaustive) {
  kernels::DaxpyConfig config;
  config.n = 3;
  const kernels::DaxpyProgram program(config);
  const fi::GoldenRun golden = fi::run_golden(program);
  util::ThreadPool pool(2);

  const GroundTruth exhaustive =
      GroundTruth::compute(program, golden, pool, /*use_cache=*/false);
  const SampledGroundTruth sampled = estimate_ground_truth(
      program, golden, golden.sample_space_size() * 2, 7, pool);
  EXPECT_EQ(sampled.records.size(), golden.sample_space_size());
  EXPECT_DOUBLE_EQ(sampled.sdc_ratio(), exhaustive.overall_sdc_ratio());
}

}  // namespace
}  // namespace ftb::campaign
