#include "campaign/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "campaign/sampler.h"
#include "kernels/hazard.h"
#include "kernels/registry.h"
#include "util/rng.h"

namespace ftb::campaign {
namespace {

std::string temp_journal(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("ftb_ckpt_" + std::string(tag) + "_" + std::to_string(::getpid()) +
           ".bin"))
      .string();
}

struct Prepared {
  explicit Prepared(const char* name)
      : program(kernels::make_program(name, kernels::Preset::kTiny)),
        golden(fi::run_golden(*program)),
        pool(2) {}
  fi::ProgramPtr program;
  fi::GoldenRun golden;
  util::ThreadPool pool;
};

TEST(Checkpoint, FreshRunJournalsEverything) {
  Prepared p("daxpy");
  util::Rng rng(31);
  const std::vector<ExperimentId> ids =
      sample_uniform(rng, p.golden.sample_space_size(), 90);

  CheckpointOptions options;
  options.path = temp_journal("fresh");
  options.flush_every = 25;
  options.pool = &p.pool;
  const CheckpointRunResult run =
      run_campaign_checkpointed(*p.program, p.golden, ids, options);

  EXPECT_FALSE(run.resumed);
  EXPECT_EQ(run.skipped, 0u);
  EXPECT_EQ(run.executed, ids.size());
  // ceil(90/25) = 4 chunk flushes + 1 final flush.
  EXPECT_EQ(run.flushes, 5u);

  std::vector<ExperimentId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_EQ(run.log.ids(), sorted);

  // The journal on disk holds the same final state.
  const auto reloaded = CampaignLog::load(options.path);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->ids(), sorted);
  std::filesystem::remove(options.path);
}

TEST(Checkpoint, ResumedRunMatchesOneShot) {
  // The ISSUE acceptance scenario: interrupt a campaign after a partial
  // run, resume it, and the final journal must equal the uninterrupted
  // one after dedupe.
  Prepared p("stencil2d");
  util::Rng rng(32);
  const std::vector<ExperimentId> ids =
      sample_uniform(rng, p.golden.sample_space_size(), 120);

  // Uninterrupted reference run.
  CheckpointOptions reference;
  reference.path = temp_journal("oneshot");
  reference.flush_every = 1000;
  reference.pool = &p.pool;
  const CheckpointRunResult one_shot =
      run_campaign_checkpointed(*p.program, p.golden, ids, reference);

  // "Interrupted" run: only the first half of the ids is attempted, so the
  // journal ends mid-campaign exactly as a killed process would leave it
  // (the journal is flushed after every chunk).
  CheckpointOptions options;
  options.path = temp_journal("resume");
  options.flush_every = 30;
  options.pool = &p.pool;
  const std::span<const ExperimentId> first_half(ids.data(), 60);
  const CheckpointRunResult partial =
      run_campaign_checkpointed(*p.program, p.golden, first_half, options);
  EXPECT_FALSE(partial.resumed);
  EXPECT_EQ(partial.executed, 60u);

  // Resume with the full id set: only the remainder executes.
  const CheckpointRunResult resumed =
      run_campaign_checkpointed(*p.program, p.golden, ids, options);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.skipped + resumed.executed, ids.size());
  EXPECT_LE(resumed.executed, 60u);  // nothing from the first half re-ran

  ASSERT_EQ(resumed.log.size(), one_shot.log.size());
  for (std::size_t i = 0; i < one_shot.log.size(); ++i) {
    const ExperimentRecord& a = one_shot.log.records()[i];
    const ExperimentRecord& b = resumed.log.records()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.result.outcome, b.result.outcome) << a.id;
    EXPECT_EQ(a.result.crash_reason, b.result.crash_reason) << a.id;
    EXPECT_DOUBLE_EQ(a.result.injected_error, b.result.injected_error) << a.id;
    EXPECT_DOUBLE_EQ(a.result.output_error, b.result.output_error) << a.id;
  }
  std::filesystem::remove(reference.path);
  std::filesystem::remove(options.path);
}

TEST(Checkpoint, SandboxedChunksWork) {
  Prepared p("daxpy");
  util::Rng rng(33);
  const std::vector<ExperimentId> ids =
      sample_uniform(rng, p.golden.sample_space_size(), 40);

  CheckpointOptions options;
  options.path = temp_journal("sandboxed");
  options.flush_every = 15;
  options.use_sandbox = true;
  const CheckpointRunResult run =
      run_campaign_checkpointed(*p.program, p.golden, ids, options);
  EXPECT_EQ(run.executed, ids.size());
  EXPECT_GE(run.sandbox_stats.children_spawned, 3u);  // one per chunk
  EXPECT_EQ(run.sandbox_stats.fallback_experiments, 0u);
  std::filesystem::remove(options.path);
}

TEST(Checkpoint, ZeroSandboxTimeoutGetsFallbackDeadline) {
  // Regression: SandboxOptions::timeout_ms = 0 disables the per-experiment
  // watchdog, so a checkpointed campaign passing it through used to hang
  // forever on the first runaway flip.  The checkpoint layer must instead
  // substitute a deadline (here derived from the configured supervisor
  // heartbeat) and classify the spin as a Hang.
  const kernels::HazardSpinProgram program{kernels::HazardSpinConfig{}};
  const fi::GoldenRun golden = fi::run_golden(program);

  const std::vector<ExperimentId> ids = {
      encode(0, 0),  // benign
      encode(kernels::HazardSpinProgram::kDecaySite, 52),  // infinite spin
  };

  CheckpointOptions options;
  options.path = temp_journal("zero_timeout");
  options.flush_every = 8;
  options.use_sandbox = true;
  options.sandbox.timeout_ms = 0;  // the hazardous configuration
  options.supervisor.pool.heartbeat_timeout_ms = 300;  // fallback source
  const CheckpointRunResult run =
      run_campaign_checkpointed(program, golden, ids, options);

  ASSERT_EQ(run.log.size(), ids.size());
  EXPECT_EQ(run.log.records()[1].result.outcome, fi::Outcome::kHang);
  EXPECT_GE(run.sandbox_stats.watchdog_kills, 1u);
  std::filesystem::remove(options.path);
}

TEST(Checkpoint, ResumeAcrossLethalExperiments) {
  // A hazard campaign interrupted after the journal saw a signal-crash
  // resumes cleanly and keeps the crash record.
  const kernels::HazardProgram program{kernels::HazardConfig{}};
  const fi::GoldenRun golden = fi::run_golden(program);
  const auto id = [](std::uint64_t site, int bit) {
    return site * static_cast<std::uint64_t>(fi::kBitsPerValue) +
           static_cast<std::uint64_t>(bit);
  };
  const std::vector<ExperimentId> ids = {
      id(0, 1),
      id(program.divisor_site(0), 62),  // SIGFPE in the child
      id(1, 2),
      id(2, 3),
  };

  CheckpointOptions options;
  options.path = temp_journal("lethal");
  options.flush_every = 2;
  options.use_sandbox = true;
  const std::span<const ExperimentId> first(ids.data(), 2);
  (void)run_campaign_checkpointed(program, golden, first, options);

  const CheckpointRunResult resumed =
      run_campaign_checkpointed(program, golden, ids, options);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.skipped, 2u);
  const CrashReasonCounts reasons =
      count_crash_reasons(resumed.log.records());
  EXPECT_GE(reasons.isolation_crashes(), 1u);
  std::filesystem::remove(options.path);
}

TEST(Checkpoint, RejectsForeignJournal) {
  Prepared daxpy("daxpy");
  util::Rng rng(34);
  const std::vector<ExperimentId> ids =
      sample_uniform(rng, daxpy.golden.sample_space_size(), 10);
  CheckpointOptions options;
  options.path = temp_journal("foreign");
  options.pool = &daxpy.pool;
  (void)run_campaign_checkpointed(*daxpy.program, daxpy.golden, ids, options);

  Prepared cg("cg");
  EXPECT_THROW(
      run_campaign_checkpointed(*cg.program, cg.golden, ids, options),
      std::invalid_argument);
  std::filesystem::remove(options.path);
}

TEST(Checkpoint, RejectsCorruptJournal) {
  Prepared p("daxpy");
  CheckpointOptions options;
  options.path = temp_journal("corrupt");
  options.pool = &p.pool;
  {
    std::ofstream out(options.path, std::ios::binary | std::ios::trunc);
    out << "this is not a campaign log, it only plays one on disk........";
  }
  const std::vector<ExperimentId> ids = {0, 1, 2};
  EXPECT_THROW(run_campaign_checkpointed(*p.program, p.golden, ids, options),
               std::runtime_error);
  std::filesystem::remove(options.path);
}

TEST(Checkpoint, RejectsEmptyPath) {
  Prepared p("daxpy");
  const std::vector<ExperimentId> ids = {0};
  EXPECT_THROW(run_campaign_checkpointed(*p.program, p.golden, ids, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ftb::campaign
