// Tests for the telemetry layer (telemetry/{registry,events,export}.h):
// histogram bucket geometry, lock-free counters under the ThreadPool,
// registry reference stability, null/disabled sink no-ops, golden-string
// exports driven by a ManualClock (deterministic timestamps), and the
// end-to-end supervisor instrumentation -- an induced worker kill must leave
// worker.respawn / supervisor.requeue / supervisor.quarantine events in the
// JSONL stream.
#include "telemetry/events.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/sample_space.h"
#include "campaign/supervisor.h"
#include "fi/executor.h"
#include "kernels/hazard.h"
#include "telemetry/export.h"
#include "telemetry/registry.h"
#include "util/thread_pool.h"

namespace ftb {
namespace {

using telemetry::LatencyHistogram;

TEST(TelemetryHistogram, BucketEdges) {
  // Bucket 0 holds only the value 0; bucket b >= 1 is [2^(b-1), 2^b).
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_of(7), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_of(8), 4u);
  EXPECT_EQ(LatencyHistogram::bucket_of(UINT64_MAX), 64u);
  static_assert(LatencyHistogram::kBuckets == 65);

  EXPECT_EQ(LatencyHistogram::bucket_floor(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_floor(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_floor(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_floor(3), 4u);
  EXPECT_EQ(LatencyHistogram::bucket_floor(64), std::uint64_t{1} << 63);

  // Round-trip: every value lies in [bucket_floor(b), bucket_floor(b + 1)).
  for (const std::uint64_t value :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{3},
        std::uint64_t{1023}, std::uint64_t{1024}, std::uint64_t{999999999}}) {
    const std::size_t bucket = LatencyHistogram::bucket_of(value);
    EXPECT_GE(value, LatencyHistogram::bucket_floor(bucket)) << value;
    if (bucket < 64) {
      EXPECT_LT(value, LatencyHistogram::bucket_floor(bucket + 1)) << value;
    }
  }
}

TEST(TelemetryHistogram, RecordTracksCountSumMinMax) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.min(), UINT64_MAX);  // sentinel while empty
  EXPECT_EQ(hist.max(), 0u);

  hist.record(0);
  hist.record(1);
  hist.record(5);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.sum(), 6u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 5u);
  EXPECT_EQ(hist.bucket_count(0), 1u);  // 0
  EXPECT_EQ(hist.bucket_count(1), 1u);  // 1
  EXPECT_EQ(hist.bucket_count(3), 1u);  // 5 in [4, 8)
  EXPECT_EQ(hist.bucket_count(2), 0u);
}

TEST(TelemetryRegistry, ReturnsStableReferencesForSameName) {
  telemetry::MetricsRegistry registry;
  EXPECT_EQ(&registry.counter("x"), &registry.counter("x"));
  EXPECT_EQ(&registry.gauge("x"), &registry.gauge("x"));
  EXPECT_EQ(&registry.histogram("x"), &registry.histogram("x"));
  EXPECT_NE(&registry.counter("x"), &registry.counter("y"));
}

TEST(TelemetryRegistry, ConcurrentIncrementsUnderThreadPoolLoseNothing) {
  telemetry::MetricsRegistry registry;
  telemetry::Counter& counter = registry.counter("test.count");
  LatencyHistogram& hist = registry.histogram("test.hist");

  constexpr std::size_t kIters = 200000;
  util::ThreadPool pool(4);
  pool.parallel_for(0, kIters, [&](std::size_t i) {
    counter.add();
    hist.record(i % 7);
  });
  EXPECT_EQ(counter.value(), kIters);
  EXPECT_EQ(hist.count(), kIters);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    bucket_total += hist.bucket_count(b);
  }
  EXPECT_EQ(bucket_total, kIters);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 6u);
}

TEST(TelemetryEvents, NullAndDisabledSinksAreInertNoOps) {
  EXPECT_FALSE(telemetry::active(nullptr));
  {
    // SpanScope on a null sink must be safe to construct and annotate.
    telemetry::SpanScope span(nullptr, "x", "y");
    span.arg("k", 1.0);
  }

  telemetry::Telemetry sink;  // disabled by default: the off-switch IS the default
  EXPECT_FALSE(telemetry::active(&sink));
  {
    telemetry::SpanScope span(&sink, "x", "y");
    span.arg("k", 1.0);
  }
  sink.instant("a", "b");
  sink.record_span("c", "d", 0, 10);
  EXPECT_TRUE(sink.events().empty());

  sink.set_enabled(true);
  EXPECT_TRUE(telemetry::active(&sink));
  sink.instant("a", "b");
  EXPECT_EQ(sink.events().size(), 1u);
}

TEST(TelemetryExport, GoldenJsonlAndChromeTraceUnderManualClock) {
  telemetry::ManualClock clock;
  telemetry::Telemetry sink(&clock);
  sink.set_enabled(true);

  clock.set_ns(1000);
  {
    telemetry::SpanScope span(&sink, "round", "campaign");
    span.arg("picked", 128.0);
    clock.set_ns(3500);
  }
  clock.set_ns(4200);
  sink.instant("death", "pool");

  const std::vector<telemetry::TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 2u);

  EXPECT_EQ(telemetry::events_to_jsonl(events),
            "{\"kind\":\"span\",\"name\":\"round\",\"cat\":\"campaign\","
            "\"ts_ns\":1000,\"dur_ns\":2500,\"tid\":0,"
            "\"args\":{\"picked\":128}}\n"
            "{\"kind\":\"instant\",\"name\":\"death\",\"cat\":\"pool\","
            "\"ts_ns\":4200,\"tid\":0,\"args\":{}}\n");

  EXPECT_EQ(telemetry::events_to_chrome_trace(events),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
            "{\"name\":\"round\",\"cat\":\"campaign\",\"ph\":\"X\",\"pid\":1,"
            "\"tid\":0,\"ts\":1.0,\"dur\":2.5,\"args\":{\"picked\":128}},\n"
            "{\"name\":\"death\",\"cat\":\"pool\",\"ph\":\"i\",\"pid\":1,"
            "\"tid\":0,\"ts\":4.2,\"s\":\"g\",\"args\":{}}\n"
            "]}\n");
}

TEST(TelemetryExport, GoldenMetricsJson) {
  telemetry::MetricsRegistry registry;
  registry.counter("a.b").add(3);
  registry.gauge("g").set(1.5);
  LatencyHistogram& hist = registry.histogram("h");
  hist.record(0);
  hist.record(1);
  hist.record(5);

  EXPECT_EQ(telemetry::metrics_to_json(registry.snapshot()),
            "{\n"
            "  \"schema\": \"ftb.telemetry.metrics/1\",\n"
            "  \"counters\": {\n"
            "    \"a.b\": 3\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"g\": 1.5\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"h\": {\"count\": 3, \"sum\": 6, \"min\": 0, \"max\": 5, "
            "\"buckets\": [[0, 1], [1, 1], [4, 1]]}\n"
            "  }\n"
            "}\n");

  // An empty registry still produces the schema envelope.
  telemetry::MetricsRegistry empty;
  EXPECT_EQ(telemetry::metrics_to_json(empty.snapshot()),
            "{\n"
            "  \"schema\": \"ftb.telemetry.metrics/1\",\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {}\n"
            "}\n");
}

TEST(TelemetryExport, JsonEscapeHandlesControlAndQuoteCharacters) {
  EXPECT_EQ(telemetry::json_escape("plain"), "plain");
  EXPECT_EQ(telemetry::json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(telemetry::json_escape(std::string("\x01", 1)), "\\u0001");
}

// ---------------------------------------------------------------------------
// End-to-end: supervisor instrumentation under an induced worker kill
// ---------------------------------------------------------------------------

TEST(TelemetrySupervisor, WorkerKillEmitsRespawnRequeueAndQuarantineEvents) {
  const kernels::HazardProgram program{kernels::HazardConfig{}};
  const fi::GoldenRun golden = fi::run_golden(program);
  ASSERT_DOUBLE_EQ(golden.trace[program.offset_site(1)], 5.0);

  const std::vector<campaign::ExperimentId> ids = {
      campaign::encode(0, 1),                        // benign
      campaign::encode(program.offset_site(1), 61),  // SIGSEGV every attempt
      campaign::encode(1, 2),                        // benign
  };

  telemetry::Telemetry sink;
  sink.set_enabled(true);
  campaign::SupervisorOptions options;
  options.pool.workers = 2;
  options.quarantine_after = 2;  // death 1 -> requeue, death 2 -> quarantine
  options.telemetry = &sink;
  campaign::CampaignSupervisor supervisor(program, golden, options);
  const std::vector<campaign::ExperimentRecord> records = supervisor.run(ids);

  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[1].result.crash_reason, fi::CrashReason::kQuarantined);

  // The JSONL stream carries the whole story: initial spawns, the respawn
  // after each kill, the requeue of the blamed experiment, the quarantine.
  const std::string jsonl = telemetry::events_to_jsonl(sink.events());
  EXPECT_NE(jsonl.find("\"name\":\"worker.spawn\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"worker.respawn\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"worker.death\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"supervisor.requeue\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"supervisor.quarantine\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"supervisor.run\""), std::string::npos);

  telemetry::MetricsRegistry& metrics = sink.metrics();
  EXPECT_EQ(metrics.counter("pool.spawns").value(), 2u);
  EXPECT_EQ(metrics.counter("pool.respawns").value(), 2u);
  EXPECT_EQ(metrics.counter("pool.worker_deaths").value(), 2u);
  // At least the blamed experiment is requeued after the first kill;
  // innocent chunk-mates in flight on the dead worker are requeued too,
  // so this is a floor, not an exact count.
  EXPECT_GE(metrics.counter("supervisor.requeues").value(), 1u);
  EXPECT_EQ(metrics.counter("supervisor.quarantines").value(), 1u);

  // And the exported Chrome trace stays a single well-formed JSON document.
  const std::string trace = telemetry::events_to_chrome_trace(sink.events());
  EXPECT_EQ(trace.front(), '{');
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
}

}  // namespace
}  // namespace ftb
