// Regenerates paper Table 3: progressive adaptive sampling (Section 3.4) --
// golden SDC ratio, the fraction of the sample space the sampler consumed
// before its stop criterion fired, and the SDC ratio predicted from the
// resulting boundary (+- stddev over trials).
//
// Expected shape (paper): order(s)-of-magnitude fewer samples than the
// exhaustive campaign with a predicted ratio close to golden; on CG the
// prediction lands *below* golden (the pruned pool under-collects SDC
// evidence), exactly as the paper's 5.3% vs 8.2% row shows.
#include "common/bench_common.h"

#include <vector>

#include "boundary/predictor.h"
#include "campaign/adaptive.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace ftb;
  const util::Cli cli(argc, argv);
  bench::BenchContext context = bench::BenchContext::from_cli(cli);
  if (!cli.has("trials")) context.trials = 10;  // the paper uses 10
  bench::print_banner(
      "Table 3 -- progressive adaptive sampling",
      "0.1%-of-space rounds, 1/S_i information bias, masked-predicted\n"
      "experiments pruned from the pool, stop when a round is >=95% SDC.",
      context);

  util::ThreadPool& pool = util::default_pool();
  util::Table table(
      {"Name", "SDC Ratio", "Sample Size", "Predict SDC Ratio", "Rounds"});

  for (const std::string& name : context.kernel_names) {
    const bench::PreparedKernel kernel =
        bench::prepare_kernel(name, context.preset);
    const campaign::GroundTruth truth =
        bench::ground_truth_for(kernel, context, pool);

    std::vector<double> fractions, predictions, rounds;
    for (std::size_t trial = 0; trial < context.trials; ++trial) {
      campaign::AdaptiveOptions options;
      options.seed = context.seed + trial;
      const campaign::AdaptiveResult result = campaign::infer_adaptive(
          *kernel.program, kernel.golden, options, pool);
      fractions.push_back(result.sample_fraction());
      predictions.push_back(boundary::predicted_overall_sdc(
          result.boundary, kernel.golden.trace));
      rounds.push_back(static_cast<double>(result.rounds.size()));
    }
    table.add_row({name, util::percent(truth.overall_sdc_ratio()),
                   util::format_percent_pm(util::mean_std(fractions)),
                   util::format_percent_pm(util::mean_std(predictions)),
                   util::format("%.1f", util::mean_std(rounds).mean)});
  }

  bench::print_table(table, context, "Table 3");
  return 0;
}
