// Serial vs parallel resiliency maps.  The paper analyses serial kernels;
// related work (Wu et al., "Silent data corruption resilient serial and
// parallel algorithms") asks how resiliency changes when the same
// computation runs across threads.  This bench answers with our machinery:
// for each kernel it infers the fault tolerance boundary of the serial run
// and of the deterministic 2- and 4-thread variants ("+tN" decorations,
// identical arithmetic, fixed reduction order), all with the ABFT detector
// armed ("+det"), and emits
//
//   * side-by-side boundary maps (grouped predicted per-site SDC ratio,
//     one series per thread count),
//   * an outcome table (masked/sdc/detected/crash per variant), and
//   * a per-phase detector-coverage table (coverage = detected / (detected
//     + sdc) among direct injections landing in that phase).
//
// Everything printed is a pure function of (--seed, --fraction, --preset,
// --kernels, --threads): no wall-clock, no sampling outside util::Rng --
// reruns are byte-identical, which is itself the determinism check for the
// threaded tracer shards.
//
// Flags beyond the common set: --threads 1,2,4  --fraction F (default 0.05)
// --group N (profile bucket size, default trace/60).
#include "common/bench_common.h"

#include <cstdio>
#include <string>
#include <vector>

#include "boundary/predictor.h"
#include "campaign/inference.h"
#include "fi/phase_map.h"
#include "util/ascii_plot.h"
#include "util/stats.h"

namespace {

using namespace ftb;

std::vector<std::size_t> parse_threads(const std::string& text) {
  std::vector<std::size_t> threads;
  std::size_t value = 0;
  bool have = false;
  for (const char c : text + ",") {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::size_t>(c - '0');
      have = true;
    } else if (have) {
      threads.push_back(value == 0 ? 1 : value);
      value = 0;
      have = false;
    }
  }
  return threads.empty() ? std::vector<std::size_t>{1, 2, 4} : threads;
}

/// One campaign over a decorated variant: boundary profile + per-phase
/// detector evidence, everything derived from the same uniform sample.
struct VariantResult {
  std::string label;                    // "serial" or "t2", "t4", ...
  campaign::OutcomeCounts counts;
  std::vector<double> profile;          // grouped predicted SDC ratio
  std::vector<std::uint64_t> detected;  // per phase segment
  std::vector<std::uint64_t> sdc;       // per phase segment
};

VariantResult run_variant(const std::string& kernel, std::size_t threads,
                          const bench::BenchContext& context, double fraction,
                          std::size_t group, util::ThreadPool& pool) {
  std::string decorated = kernel;
  if (threads > 1) decorated += "+t" + std::to_string(threads);
  decorated += "+det";
  const bench::PreparedKernel prepared =
      bench::prepare_kernel(decorated, context.preset);

  campaign::InferenceOptions options;
  options.sample_fraction = fraction;
  options.seed = context.seed;
  options.filter = true;
  const campaign::InferenceResult result =
      campaign::infer_uniform(*prepared.program, prepared.golden, options,
                              pool);

  VariantResult variant;
  variant.label = threads > 1 ? "t" + std::to_string(threads) : "serial";
  variant.counts = result.counts;
  const std::size_t group_size =
      group ? group
            : std::max<std::size_t>(1, prepared.golden.trace.size() / 60);
  variant.profile = util::group_means(
      boundary::predicted_sdc_profile(result.boundary, prepared.golden.trace),
      group_size);

  const fi::PhaseMap phases(prepared.golden.phases,
                            prepared.golden.trace.size());
  variant.detected.assign(phases.segments().size(), 0);
  variant.sdc.assign(phases.segments().size(), 0);
  for (const campaign::ExperimentRecord& record : result.records) {
    if (!campaign::is_classic(record.id)) continue;
    if (record.result.outcome != fi::Outcome::kSdc &&
        record.result.outcome != fi::Outcome::kDetected) {
      continue;
    }
    const std::uint64_t site = campaign::site_of(record.id);
    for (std::size_t seg = 0; seg < phases.segments().size(); ++seg) {
      const auto& segment = phases.segments()[seg];
      if (site >= segment.begin && site < segment.end) {
        (record.result.outcome == fi::Outcome::kDetected ? variant.detected
                                                  : variant.sdc)[seg]++;
        break;
      }
    }
  }
  return variant;
}

std::string coverage_cell(std::uint64_t detected, std::uint64_t sdc) {
  const std::uint64_t wrong = detected + sdc;
  if (wrong == 0) return "-";
  return util::format(
      "%s (%llu/%llu)",
      util::percent(static_cast<double>(detected) /
                    static_cast<double>(wrong))
          .c_str(),
      static_cast<unsigned long long>(detected),
      static_cast<unsigned long long>(wrong));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftb;
  const util::Cli cli(argc, argv);
  bench::BenchContext context = bench::BenchContext::from_cli(cli);
  if (!cli.has("kernels")) {
    // Default to the kernels that actually have threaded variants.
    context.kernel_names = {"cg", "spmv", "stencil2d"};
  }
  const double fraction = cli.get_double("fraction", 0.05);
  const auto group = static_cast<std::size_t>(cli.get_int("group", 0));
  const std::vector<std::size_t> thread_counts =
      parse_threads(cli.get("threads", "1,2,4"));
  bench::print_banner(
      "Serial vs parallel boundary maps",
      "grouped predicted SDC ratio and ABFT detector coverage for the same\n"
      "kernel run serially and on deterministic 2-/4-thread shards (+det\n"
      "variants); identical arithmetic, fixed reduction order.",
      context);

  util::ThreadPool& pool = util::default_pool();

  for (const std::string& kernel : context.kernel_names) {
    std::vector<VariantResult> variants;
    for (const std::size_t threads : thread_counts) {
      variants.push_back(
          run_variant(kernel, threads, context, fraction, group, pool));
    }

    std::printf("--- %s (fraction %.2f%%, threads", kernel.c_str(),
                100.0 * fraction);
    for (const std::size_t threads : thread_counts) {
      std::printf(" %zu", threads);
    }
    std::printf(") ---\n");

    // Boundary maps, one series per thread count on one set of axes.
    static constexpr char kMarkers[] = {'o', '*', '#', '+', 'x', '@'};
    std::vector<util::Series> series;
    for (std::size_t i = 0; i < variants.size(); ++i) {
      series.push_back({variants[i].label, variants[i].profile,
                        kMarkers[i % sizeof(kMarkers)]});
    }
    util::PlotOptions plot_options;
    plot_options.fix_y_range = true;
    plot_options.y_min = 0.0;
    plot_options.y_max = 1.0;
    plot_options.x_label = "dynamic instruction group";
    std::printf("[boundary map] predicted SDC ratio per instruction group\n%s",
                util::plot(series, plot_options).c_str());

    // Outcome table.
    {
      util::Table table(
          {"variant", "masked", "sdc", "detected", "crash", "coverage"});
      for (const VariantResult& variant : variants) {
        const auto cell = [](std::uint64_t count) {
          return util::format("%llu",
                              static_cast<unsigned long long>(count));
        };
        table.add_row({variant.label, cell(variant.counts.masked),
                       cell(variant.counts.sdc),
                       cell(variant.counts.detected),
                       cell(variant.counts.crash),
                       util::percent(variant.counts.detected_coverage())});
      }
      bench::print_table(table, context, kernel + ": campaign outcomes");
    }

    // Per-phase detector coverage, side by side.  All variants trace the
    // same phase sequence (threads never change the phase structure).
    {
      const bench::PreparedKernel serial =
          bench::prepare_kernel(kernel, context.preset);
      const fi::PhaseMap phases(serial.golden.phases,
                                serial.golden.trace.size());
      std::vector<std::string> header = {"phase"};
      for (const VariantResult& variant : variants) {
        header.push_back(variant.label + " coverage");
      }
      util::Table table(header);
      for (std::size_t seg = 0; seg < phases.segments().size(); ++seg) {
        std::vector<std::string> row = {phases.segments()[seg].name};
        for (const VariantResult& variant : variants) {
          row.push_back(seg < variant.detected.size()
                            ? coverage_cell(variant.detected[seg],
                                            variant.sdc[seg])
                            : "-");
        }
        table.add_row(row);
      }
      bench::print_table(table, context,
                         kernel + ": detector coverage by phase");
    }
    std::fflush(stdout);
  }
  return 0;
}
