// Ablation for the paper's Section 5 "Overhead" discussion: the analysis
// "load[s] the entire state into the memory ... which can result in
// substantial memory overhead for a large-scale application".
//
// We compare the standard buffered pipeline (golden trace + one diff buffer
// resident, 16 bytes per dynamic instruction) against the low-memory
// pipeline of fi/lowmem.h (Gorilla-compressed golden trace + streaming
// comparison, no O(D) buffers) on identical samples:
//
//   * memory: raw vs compressed golden-trace bytes per kernel,
//   * fidelity: the resulting boundary thresholds are bit-identical,
//   * cost: wall-clock ratio of the two pipelines (streaming decodes the
//     golden value per step and reruns masked experiments, so it trades
//     time for memory -- exactly the "computation duplication" trade the
//     paper proposes).
#include "common/bench_common.h"

#include <chrono>
#include <cmath>

#include "boundary/accumulator.h"
#include "campaign/inference.h"
#include "fi/lowmem.h"
#include "util/stats.h"

namespace {

using namespace ftb;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchContext context = bench::BenchContext::from_cli(cli);
  const double fraction = cli.get_double("fraction", 0.02);
  bench::print_banner(
      "Ablation -- golden-trace memory: buffered vs compressed streaming",
      "Same samples through the standard pipeline and the low-memory one\n"
      "(Gorilla-compressed golden trace + streaming compare).",
      context);

  util::ThreadPool& pool = util::default_pool();
  util::Table table({"Name", "DynInstrs", "trace raw", "trace compressed",
                     "ratio", "boundary identical", "time lowmem/std"});

  for (const std::string& name : context.kernel_names) {
    const bench::PreparedKernel kernel =
        bench::prepare_kernel(name, context.preset);
    const fi::GoldenRun& golden = kernel.golden;
    const fi::CompressedGoldenTrace compressed =
        fi::CompressedGoldenTrace::from(golden);

    // Standard pipeline.
    campaign::InferenceOptions options;
    options.sample_fraction = fraction;
    options.seed = context.seed;
    options.filter = true;
    const auto standard_start = Clock::now();
    const campaign::InferenceResult standard =
        campaign::infer_uniform(*kernel.program, golden, options, pool);
    const double standard_seconds = seconds_since(standard_start);

    // Low-memory pipeline over the same experiment ids (two passes).
    const auto lowmem_start = Clock::now();
    boundary::BoundaryAccumulator accumulator(
        golden.trace.size(), {options.filter, options.prop_buffer_cap});
    for (const campaign::ExperimentId id : standard.sampled_ids) {
      const fi::Injection injection = campaign::injection_of(id);
      const fi::ExperimentResult outcome =
          fi::run_injected_lowmem(*kernel.program, compressed, injection);
      accumulator.record_injection(campaign::site_of(id),
                                   campaign::bit_of(id), outcome.outcome,
                                   outcome.injected_error);
      if (outcome.outcome == fi::Outcome::kMasked) {
        (void)fi::run_injected_compare_lowmem(
            *kernel.program, compressed, injection,
            [&](std::uint64_t site, double error) {
              accumulator.record_masked_value(site, error);
            });
      }
    }
    const boundary::FaultToleranceBoundary lowmem_boundary =
        accumulator.finalize();
    const double lowmem_seconds = seconds_since(lowmem_start);

    bool identical = lowmem_boundary.sites() == standard.boundary.sites();
    for (std::size_t i = 0; identical && i < lowmem_boundary.sites(); ++i) {
      identical = lowmem_boundary.threshold(i) ==
                  standard.boundary.threshold(i);
    }

    table.add_row(
        {name,
         util::format("%llu", static_cast<unsigned long long>(
                                  golden.dynamic_instructions())),
         util::format("%zu B", compressed.raw_bytes()),
         util::format("%zu B", compressed.compressed_bytes()),
         util::format("%.2fx", compressed.compression_ratio()),
         identical ? "yes" : "NO",
         util::format("%.2fx", standard_seconds > 0.0
                                   ? lowmem_seconds / standard_seconds
                                   : 0.0)});
  }

  bench::print_table(table, context, "memory-overhead trade (Section 5)");
  return 0;
}
