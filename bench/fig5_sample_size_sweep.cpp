// Regenerates paper Figure 5: prediction precision and recall as functions
// of the sampling rate {0.1, 0.5, 1, 5, 10, 50}%, with the Section 3.5
// filter off (top row) and on (bottom row).
//
// Expected shape (paper): recall rises steeply then levels off around
// 80-90% before converging slowly; without the filter, precision can sag as
// more (occasionally contaminated) propagation data accumulates -- most
// visibly on CG -- while with the filter precision stays pinned near 100%
// at the cost of slightly slower recall growth.
#include "common/bench_common.h"

#include <cstdio>
#include <vector>

#include "boundary/metrics.h"
#include "campaign/inference.h"
#include "util/ascii_plot.h"
#include "util/svg_plot.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace ftb;
  const util::Cli cli(argc, argv);
  const bench::BenchContext context = bench::BenchContext::from_cli(cli);
  bench::print_banner(
      "Figure 5 -- precision & recall vs sampling rate, filter off/on",
      "Uniform sampling at {0.1, 0.5, 1, 5, 10, 50}% of the sample space;\n"
      "means over trials; the filter (Section 3.5) trades recall for\n"
      "precision stability.",
      context);

  const std::vector<double> fractions = {0.001, 0.005, 0.01, 0.05, 0.1, 0.5};
  const std::string svg_dir = cli.get("svg");
  util::ThreadPool& pool = util::default_pool();

  for (const std::string& name : context.kernel_names) {
    const bench::PreparedKernel kernel =
        bench::prepare_kernel(name, context.preset);
    const campaign::GroundTruth truth =
        bench::ground_truth_for(kernel, context, pool);

    util::Table table({"fraction", "precision(no filter)", "recall(no filter)",
                       "precision(filter)", "recall(filter)"});
    std::vector<double> precision_plain, recall_plain, precision_filtered,
        recall_filtered;

    for (double fraction : fractions) {
      util::RunningStats stats[4];
      for (std::size_t trial = 0; trial < context.trials; ++trial) {
        for (int filtered = 0; filtered < 2; ++filtered) {
          campaign::InferenceOptions options;
          options.sample_fraction = fraction;
          options.seed = context.seed + trial;  // same samples both ways
          options.filter = filtered != 0;
          const campaign::InferenceResult result = campaign::infer_uniform(
              *kernel.program, kernel.golden, options, pool);
          const auto metrics = boundary::evaluate_boundary(
              result.boundary, kernel.golden.trace, truth.outcomes(),
              result.sampled_ids);
          stats[2 * filtered].add(metrics.precision());
          stats[2 * filtered + 1].add(metrics.recall());
        }
      }
      precision_plain.push_back(stats[0].mean());
      recall_plain.push_back(stats[1].mean());
      precision_filtered.push_back(stats[2].mean());
      recall_filtered.push_back(stats[3].mean());
      table.add_row({util::percent(fraction, 1),
                     util::percent(stats[0].mean()),
                     util::percent(stats[1].mean()),
                     util::percent(stats[2].mean()),
                     util::percent(stats[3].mean())});
    }

    std::printf("--- %s ---\n", name.c_str());
    bench::print_table(table, context, "Figure 5 data");

    util::PlotOptions plot_options;
    plot_options.fix_y_range = true;
    plot_options.y_min = 0.5;
    plot_options.y_max = 1.02;
    plot_options.width = 60;
    plot_options.x_label = "sampling rate (log-ish index)";
    const util::Series top[] = {
        {"precision (no filter)", precision_plain, 'p'},
        {"recall (no filter)", recall_plain, 'r'},
    };
    const util::Series bottom[] = {
        {"precision (filter)", precision_filtered, 'P'},
        {"recall (filter)", recall_filtered, 'R'},
    };
    std::printf("[top: no filter]\n%s", util::plot(top, plot_options).c_str());
    std::printf("[bottom: with filter]\n%s\n",
                util::plot(bottom, plot_options).c_str());

    if (!svg_dir.empty()) {
      util::SvgOptions svg_options;
      svg_options.x_label = "sampling-rate index {0.1,0.5,1,5,10,50}%";
      svg_options.y_label = "ratio";
      svg_options.title = name + ": no filter";
      util::write_svg_file(svg_dir + "/fig5_" + name + "_nofilter.svg",
                           util::svg_chart(top, svg_options));
      svg_options.title = name + ": with filter";
      util::write_svg_file(svg_dir + "/fig5_" + name + "_filter.svg",
                           util::svg_chart(bottom, svg_options));
      std::printf("SVGs written to %s/fig5_%s_{nofilter,filter}.svg\n",
                  svg_dir.c_str(), name.c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}
