// Ablation for the paper's Related-Work claim that its boundary method
// "can be combined" with Relyzer-style fault-site equivalence "to further
// reduce the number of samples": at equal experiment budgets, compare
//
//   uniform       -- plain Monte-Carlo sampling (Section 4.2),
//   equivalence   -- per-class pilots + threshold broadcast
//                    (campaign/equivalence.h),
//
// scored against exhaustive ground truth.  Equivalence concentrates the
// budget on one representative per (phase, sign, magnitude) class, covering
// *sites* far faster than uniform sampling covers experiments -- at the
// cost of trusting the class homogeneity (broadcast errors show up as lost
// precision).
#include "common/bench_common.h"

#include "boundary/metrics.h"
#include "campaign/equivalence.h"
#include "campaign/inference.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace ftb;
  const util::Cli cli(argc, argv);
  const bench::BenchContext context = bench::BenchContext::from_cli(cli);
  bench::print_banner(
      "Ablation -- boundary + Relyzer-style equivalence classes",
      "Per-class pilot campaigns with threshold broadcast vs plain uniform\n"
      "sampling at equal budget (paper Related Work: 'the two approaches\n"
      "can be combined').",
      context);

  util::ThreadPool& pool = util::default_pool();

  for (const std::string& name : context.kernel_names) {
    const bench::PreparedKernel kernel =
        bench::prepare_kernel(name, context.preset);
    const campaign::GroundTruth truth =
        bench::ground_truth_for(kernel, context, pool);

    util::Table table(
        {"budget", "uniform P/R", "equivalence P/R", "classes",
         "mean class size"});
    for (const double fraction : {0.002, 0.01, 0.05}) {
      const auto budget = static_cast<std::uint64_t>(
          fraction * static_cast<double>(kernel.golden.sample_space_size()));

      util::RunningStats up, ur, ep, er;
      std::size_t class_count = 0;
      double mean_size = 0.0;
      for (std::size_t trial = 0; trial < context.trials; ++trial) {
        campaign::InferenceOptions uniform_options;
        uniform_options.sample_fraction = fraction;
        uniform_options.seed = context.seed + trial;
        uniform_options.filter = true;
        const campaign::InferenceResult uniform = campaign::infer_uniform(
            *kernel.program, kernel.golden, uniform_options, pool);
        const auto uniform_metrics = boundary::evaluate_boundary(
            uniform.boundary, kernel.golden.trace, truth.outcomes(),
            uniform.sampled_ids);
        up.add(uniform_metrics.precision());
        ur.add(uniform_metrics.recall());

        campaign::EquivalenceInferenceOptions equivalence_options;
        equivalence_options.budget = budget;
        equivalence_options.seed = context.seed + trial;
        const campaign::EquivalenceInferenceResult equivalence =
            campaign::infer_with_equivalence(*kernel.program, kernel.golden,
                                             equivalence_options, pool);
        const auto equivalence_metrics = boundary::evaluate_boundary(
            equivalence.boundary, kernel.golden.trace, truth.outcomes(),
            equivalence.sampled_ids);
        ep.add(equivalence_metrics.precision());
        er.add(equivalence_metrics.recall());
        class_count = equivalence.classes;
        mean_size = equivalence.mean_class_size;
      }
      table.add_row({util::percent(fraction, 1),
                     util::format("%s / %s", util::percent(up.mean()).c_str(),
                                  util::percent(ur.mean()).c_str()),
                     util::format("%s / %s", util::percent(ep.mean()).c_str(),
                                  util::percent(er.mean()).c_str()),
                     util::format("%zu", class_count),
                     util::format("%.1f", mean_size)});
    }
    std::printf("--- %s ---\n", name.c_str());
    bench::print_table(table, context, "");
  }
  return 0;
}
