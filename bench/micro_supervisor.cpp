// Microbenchmarks comparing the two process-isolation strategies on the CG
// kernel: the per-batch sandbox (fork one child per batch of experiments,
// fi/sandbox.h run_injected_sandboxed via run_experiments_sandboxed) versus
// the persistent worker pool behind the campaign supervisor
// (campaign/supervisor.h), which forks once and streams chunks to long-lived
// workers.  The supervisor's pitch is that amortising the fork across the
// whole campaign makes isolation affordable, so the persistent pool must be
// no slower than per-batch forking on a healthy (non-hazard) workload.
//
// The snapshot benchmarks below add the third strategy: the same persistent
// pool, but with each worker serving experiments from a copy-on-write
// fork-server (fi/snapshot.h) so an experiment replays only the suffix after
// the nearest checkpoint instead of the whole program.  Those run on
// bench-sized CG/LU/FFT configs where one replay costs milliseconds -- at
// the tiny sizes above, the ~0.2 ms fork round-trip would swamp the prefix
// savings and the comparison would measure fork(), not the strategy.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/sample_space.h"
#include "campaign/supervisor.h"
#include "fi/executor.h"
#include "fi/sandbox.h"
#include "kernels/cg.h"
#include "kernels/fft.h"
#include "kernels/lu.h"
#include "kernels/registry.h"

namespace {

using namespace ftb;

struct CgFixture {
  CgFixture()
      : program(kernels::make_program("cg", kernels::Preset::kTiny)),
        golden(fi::run_golden(*program)) {
    // A fixed, striped sample over the space: identical work for both
    // strategies, spread across the whole trace.
    const std::uint64_t space = golden.sample_space_size();
    for (std::uint64_t i = 0; i < kExperiments; ++i) {
      ids.push_back((i * 9973) % space);
    }
  }
  static constexpr std::uint64_t kExperiments = 256;
  fi::ProgramPtr program;
  fi::GoldenRun golden;
  std::vector<campaign::ExperimentId> ids;
};

CgFixture& fixture() {
  static CgFixture f;
  return f;
}

void BM_CgPerBatchSandbox(benchmark::State& state) {
  CgFixture& f = fixture();
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const fi::SandboxOptions options;
  for (auto _ : state) {
    // One run_injected_sandboxed call -- and thus (at least) one fork() --
    // per batch of experiments, as RunCampaign did before the supervisor.
    for (std::size_t begin = 0; begin < f.ids.size(); begin += batch) {
      const std::size_t count = std::min(batch, f.ids.size() - begin);
      benchmark::DoNotOptimize(campaign::run_experiments_sandboxed(
          *f.program, f.golden,
          std::span<const campaign::ExperimentId>(f.ids.data() + begin,
                                                  count),
          options));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.ids.size()));
}
BENCHMARK(BM_CgPerBatchSandbox)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_CgSupervisorPool(benchmark::State& state) {
  CgFixture& f = fixture();
  campaign::SupervisorOptions options;
  options.pool.workers = static_cast<int>(state.range(0));
  options.chunk_size = 16;
  // The pool (and its one-time fork cost) lives across iterations, exactly
  // as it lives across rounds in a real campaign.
  campaign::CampaignSupervisor supervisor(*f.program, f.golden, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(supervisor.run(f.ids));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.ids.size()));
}
BENCHMARK(BM_CgSupervisorPool)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CgSupervisorColdStart(benchmark::State& state) {
  // Includes pool construction + shutdown per iteration: the worst case for
  // the persistent pool, bounding what a short campaign pays up front.
  CgFixture& f = fixture();
  campaign::SupervisorOptions options;
  options.pool.workers = 4;
  options.chunk_size = 16;
  for (auto _ : state) {
    campaign::CampaignSupervisor supervisor(*f.program, f.golden, options);
    benchmark::DoNotOptimize(supervisor.run(f.ids));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.ids.size()));
}
BENCHMARK(BM_CgSupervisorColdStart)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Snapshot fork-server benchmarks (fi/snapshot.h via WorkerPoolOptions).
//
// Two sampling shapes per kernel:
//   *Uniform*  -- sites striped over the whole trace.  The classic worker
//     replays the full program for every experiment; the snapshot worker
//     skips the prefix before the nearest checkpoint, which for a uniform
//     site distribution averages half the trace.  Speedup is therefore
//     mathematically capped at 2x no matter the interval (see
//     EXPERIMENTS.md).
//   *LatePhase* -- sites confined to the last quarter of the trace, the
//     shape adaptive boundary refinement produces once it has localised
//     the transition region.  Here the snapshot path skips ~75% of every
//     replay and the speedup clears the 2x cap.
//
// Benchmark argument = checkpoint interval in dynamic instructions;
// 0 = classic pool (no snapshots), the baseline.  Low mantissa bits are
// flipped so experiments stay benign (masked/SDC) and both arms execute
// the same full suffix -- timing measures the strategy, not crash-early
// artifacts.
// ---------------------------------------------------------------------------

struct SnapshotFixture {
  explicit SnapshotFixture(fi::ProgramPtr p)
      : program(std::move(p)), golden(fi::run_golden(*program)) {
    const std::uint64_t sites = golden.trace.size();
    const std::uint64_t late_begin = sites - sites / 4;
    const std::uint64_t tail_begin = sites - sites / 32;
    for (std::uint64_t i = 0; i < kExperiments; ++i) {
      const int bit = static_cast<int>((i * 5) % 16);  // low mantissa only
      uniform.push_back(campaign::encode((i * 99991) % sites, bit));
      late.push_back(
          campaign::encode(late_begin + (i * 99991) % (sites - late_begin),
                           bit));
      tail.push_back(
          campaign::encode(tail_begin + (i * 99991) % (sites - tail_begin),
                           bit));
    }
  }
  static constexpr std::uint64_t kExperiments = 64;
  fi::ProgramPtr program;
  fi::GoldenRun golden;
  std::vector<campaign::ExperimentId> uniform;
  std::vector<campaign::ExperimentId> late;
  /// Sites packed into the last ~3% of the trace: the localised-transition
  /// endgame where checkpoint *placement* (not just existence) decides how
  /// much prefix each fork replays.  The thinned uniform grid leaves this
  /// window one checkpoint at best; density hints fill it.
  std::vector<campaign::ExperimentId> tail;
};

// Bench-sized configs: one golden replay costs a few milliseconds, the
// regime the fork-server targets (a campaign over real NPB-class runs, not
// the unit-test grids).
SnapshotFixture& cg_snapshot_fixture() {
  static SnapshotFixture f([] {
    kernels::CgConfig config;
    config.nx = 24;
    config.ny = 24;
    config.iterations = 200;
    return std::make_unique<kernels::CgProgram>(config);
  }());
  return f;
}

SnapshotFixture& lu_snapshot_fixture() {
  static SnapshotFixture f([] {
    kernels::LuConfig config;
    config.n = 128;
    config.block = 16;
    return std::make_unique<kernels::LuProgram>(config);
  }());
  return f;
}

SnapshotFixture& fft_snapshot_fixture() {
  static SnapshotFixture f([] {
    kernels::FftConfig config;
    config.n1 = 128;
    config.n2 = 128;
    return std::make_unique<kernels::FftProgram>(config);
  }());
  return f;
}

void run_snapshot_campaign(benchmark::State& state, SnapshotFixture& f,
                           const std::vector<campaign::ExperimentId>& ids,
                           bool density_hints = false) {
  campaign::SupervisorOptions options;
  options.pool.workers = 1;  // one worker: per-experiment cost, undiluted
  options.chunk_size = 16;
  const auto interval = static_cast<std::uint64_t>(state.range(0));
  if (interval != 0) {
    options.pool.use_snapshots = true;
    options.pool.snapshot.interval = interval;
    if (density_hints) {
      // Density-aware placement: spend the checkpoint budget at quantiles
      // of the campaign's own site distribution instead of on the uniform
      // grid (fi::plan_checkpoints).  On the late-phase shape the uniform
      // grid drops most of its slots in the dead first three quarters of
      // the trace; the hinted plan packs them where the forks happen.
      for (const campaign::ExperimentId id : ids) {
        options.pool.snapshot.site_hints.push_back(campaign::site_of(id));
      }
    }
  }
  campaign::CampaignSupervisor supervisor(*f.program, f.golden, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(supervisor.run(ids));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ids.size()));
  state.counters["trace"] = static_cast<double>(f.golden.trace.size());
}

void BM_CgSnapshotUniform(benchmark::State& state) {
  run_snapshot_campaign(state, cg_snapshot_fixture(),
                        cg_snapshot_fixture().uniform);
}
BENCHMARK(BM_CgSnapshotUniform)
    ->Arg(0)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_CgSnapshotLatePhase(benchmark::State& state) {
  run_snapshot_campaign(state, cg_snapshot_fixture(),
                        cg_snapshot_fixture().late);
}
BENCHMARK(BM_CgSnapshotLatePhase)
    ->Arg(0)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_CgSnapshotLatePhaseDensityHints(benchmark::State& state) {
  run_snapshot_campaign(state, cg_snapshot_fixture(),
                        cg_snapshot_fixture().late,
                        /*density_hints=*/true);
}
BENCHMARK(BM_CgSnapshotLatePhaseDensityHints)
    ->Arg(1024)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_CgSnapshotTailCluster(benchmark::State& state) {
  run_snapshot_campaign(state, cg_snapshot_fixture(),
                        cg_snapshot_fixture().tail);
}
BENCHMARK(BM_CgSnapshotTailCluster)
    ->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_CgSnapshotTailClusterDensityHints(benchmark::State& state) {
  run_snapshot_campaign(state, cg_snapshot_fixture(),
                        cg_snapshot_fixture().tail,
                        /*density_hints=*/true);
}
BENCHMARK(BM_CgSnapshotTailClusterDensityHints)
    ->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_LuSnapshotUniform(benchmark::State& state) {
  run_snapshot_campaign(state, lu_snapshot_fixture(),
                        lu_snapshot_fixture().uniform);
}
BENCHMARK(BM_LuSnapshotUniform)
    ->Arg(0)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_LuSnapshotLatePhase(benchmark::State& state) {
  run_snapshot_campaign(state, lu_snapshot_fixture(),
                        lu_snapshot_fixture().late);
}
BENCHMARK(BM_LuSnapshotLatePhase)
    ->Arg(0)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_FftSnapshotUniform(benchmark::State& state) {
  run_snapshot_campaign(state, fft_snapshot_fixture(),
                        fft_snapshot_fixture().uniform);
}
BENCHMARK(BM_FftSnapshotUniform)
    ->Arg(0)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_FftSnapshotLatePhase(benchmark::State& state) {
  run_snapshot_campaign(state, fft_snapshot_fixture(),
                        fft_snapshot_fixture().late);
}
BENCHMARK(BM_FftSnapshotLatePhase)
    ->Arg(0)->Arg(4096)->Unit(benchmark::kMillisecond);

}  // namespace
