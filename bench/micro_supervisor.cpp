// Microbenchmarks comparing the two process-isolation strategies on the CG
// kernel: the per-batch sandbox (fork one child per batch of experiments,
// fi/sandbox.h run_injected_sandboxed via run_experiments_sandboxed) versus
// the persistent worker pool behind the campaign supervisor
// (campaign/supervisor.h), which forks once and streams chunks to long-lived
// workers.  The supervisor's pitch is that amortising the fork across the
// whole campaign makes isolation affordable, so the persistent pool must be
// no slower than per-batch forking on a healthy (non-hazard) workload.
#include <benchmark/benchmark.h>

#include <vector>

#include "campaign/campaign.h"
#include "campaign/sample_space.h"
#include "campaign/supervisor.h"
#include "fi/executor.h"
#include "fi/sandbox.h"
#include "kernels/registry.h"

namespace {

using namespace ftb;

struct CgFixture {
  CgFixture()
      : program(kernels::make_program("cg", kernels::Preset::kTiny)),
        golden(fi::run_golden(*program)) {
    // A fixed, striped sample over the space: identical work for both
    // strategies, spread across the whole trace.
    const std::uint64_t space = golden.sample_space_size();
    for (std::uint64_t i = 0; i < kExperiments; ++i) {
      ids.push_back((i * 9973) % space);
    }
  }
  static constexpr std::uint64_t kExperiments = 256;
  fi::ProgramPtr program;
  fi::GoldenRun golden;
  std::vector<campaign::ExperimentId> ids;
};

CgFixture& fixture() {
  static CgFixture f;
  return f;
}

void BM_CgPerBatchSandbox(benchmark::State& state) {
  CgFixture& f = fixture();
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const fi::SandboxOptions options;
  for (auto _ : state) {
    // One run_injected_sandboxed call -- and thus (at least) one fork() --
    // per batch of experiments, as RunCampaign did before the supervisor.
    for (std::size_t begin = 0; begin < f.ids.size(); begin += batch) {
      const std::size_t count = std::min(batch, f.ids.size() - begin);
      benchmark::DoNotOptimize(campaign::run_experiments_sandboxed(
          *f.program, f.golden,
          std::span<const campaign::ExperimentId>(f.ids.data() + begin,
                                                  count),
          options));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.ids.size()));
}
BENCHMARK(BM_CgPerBatchSandbox)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_CgSupervisorPool(benchmark::State& state) {
  CgFixture& f = fixture();
  campaign::SupervisorOptions options;
  options.pool.workers = static_cast<int>(state.range(0));
  options.chunk_size = 16;
  // The pool (and its one-time fork cost) lives across iterations, exactly
  // as it lives across rounds in a real campaign.
  campaign::CampaignSupervisor supervisor(*f.program, f.golden, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(supervisor.run(f.ids));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.ids.size()));
}
BENCHMARK(BM_CgSupervisorPool)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CgSupervisorColdStart(benchmark::State& state) {
  // Includes pool construction + shutdown per iteration: the worst case for
  // the persistent pool, bounding what a short campaign pays up front.
  CgFixture& f = fixture();
  campaign::SupervisorOptions options;
  options.pool.workers = 4;
  options.chunk_size = 16;
  for (auto _ : state) {
    campaign::CampaignSupervisor supervisor(*f.program, f.golden, options);
    benchmark::DoNotOptimize(supervisor.run(f.ids));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.ids.size()));
}
BENCHMARK(BM_CgSupervisorColdStart)->Unit(benchmark::kMillisecond);

}  // namespace
