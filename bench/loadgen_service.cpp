// Multi-connection load generator for ftb_served's query plane.
//
// Spawns an in-process Server + Service pair on an ephemeral loopback port
// (or targets an external daemon via --port), warms the store with
// published boundaries, and hammers PredictFlip from N client threads.
// Two measured phases:
//
//   idle      -- queries only
//   campaign  -- the same load while a campaign job runs on the server
//
// Reported per phase: request count, QPS, p50/p99 latency.  The ISSUE
// acceptance bar is >= 10k predict QPS warm and a campaign-phase p99 below
// 2x the idle-phase p99.
//
//   loadgen_service --connections 4 --duration-ms 2000
//                   --campaign-batch 20000 [--host H --port P]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "kernels/registry.h"
#include "net/client.h"
#include "net/server.h"
#include "service/service.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

struct PhaseResult {
  std::string name;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;

  double qps() const { return seconds > 0 ? requests / seconds : 0.0; }
};

double percentile_us(std::vector<std::uint64_t>& ns, double q) {
  if (ns.empty()) return 0.0;
  std::sort(ns.begin(), ns.end());
  const std::size_t index = std::min(
      ns.size() - 1, static_cast<std::size_t>(q * static_cast<double>(ns.size())));
  return static_cast<double>(ns[index]) / 1e3;
}

/// One measurement phase: `connections` threads each run a dedicated
/// client in a closed loop of PredictFlip calls for `duration_ms`.
PhaseResult run_phase(const std::string& name, const std::string& host,
                      std::uint16_t port, int connections,
                      std::uint32_t duration_ms,
                      const std::vector<std::string>& keys,
                      std::uint64_t sites) {
  std::vector<std::vector<std::uint64_t>> latencies(connections);
  std::vector<std::uint64_t> errors(connections, 0);
  std::vector<std::thread> threads;
  std::atomic<bool> go{false};
  for (int t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      ftb::net::ClientOptions options;
      options.host = host;
      options.port = port;
      ftb::net::Client client(options);
      std::string error;
      if (!client.connect(&error)) {
        ++errors[t];
        return;
      }
      latencies[t].reserve(1 << 18);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      const auto deadline =
          Clock::now() + std::chrono::milliseconds(duration_ms);
      std::uint64_t i = static_cast<std::uint64_t>(t) * 7919;
      while (Clock::now() < deadline) {
        ftb::service::PredictFlipReq req;
        req.key = keys[i % keys.size()];
        req.site = (i * 2654435761u) % sites;
        req.bit = static_cast<std::uint32_t>(i % 64);
        ++i;
        const auto begin = Clock::now();
        const auto reply =
            client.call(ftb::service::make_predict_flip(req), &error);
        const auto end = Clock::now();
        if (!reply.has_value() ||
            !ftb::service::parse_predict_flip_ok(*reply).has_value()) {
          ++errors[t];
          continue;
        }
        latencies[t].push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                .count()));
      }
    });
  }
  const auto begin = Clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();
  const auto end = Clock::now();

  PhaseResult result;
  result.name = name;
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - begin)
          .count();
  std::vector<std::uint64_t> merged;
  for (int t = 0; t < connections; ++t) {
    result.requests += latencies[t].size();
    result.errors += errors[t];
    merged.insert(merged.end(), latencies[t].begin(), latencies[t].end());
  }
  result.p50_us = percentile_us(merged, 0.50);
  result.p99_us = percentile_us(merged, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftb;

  util::Cli cli(argc, argv);
  cli.describe("connections", "client connections / threads (default 4)");
  cli.describe("duration-ms", "measured time per phase (default 2000)");
  cli.describe("campaign-batch",
               "experiments in the concurrent campaign (0 disables; "
               "default 20000)");
  cli.describe("campaign-workers", "sandbox workers for the campaign (2)");
  cli.describe("campaign-kernel", "kernel for the campaign (daxpy)");
  cli.describe("campaign-preset", "preset for the campaign (default)");
  cli.describe("host", "target an external daemon instead (with --port)");
  cli.describe("port", "external daemon port (0 = spawn in-process)");
  if (cli.has("help")) {
    cli.print_help("ftb_served query-plane load generator");
    return 0;
  }

  const int connections =
      static_cast<int>(std::max<std::int64_t>(1, cli.get_int("connections", 4)));
  const auto duration_ms =
      static_cast<std::uint32_t>(std::max<std::int64_t>(
          100, cli.get_int("duration-ms", 2000)));
  const auto campaign_batch =
      static_cast<std::uint64_t>(std::max<std::int64_t>(
          0, cli.get_int("campaign-batch", 20000)));
  const std::string host = cli.get("host", "127.0.0.1");
  auto port = static_cast<std::uint16_t>(cli.get_int("port", 0));

  if (!net::net_supported()) {
    std::fprintf(stderr, "loadgen_service: no socket support on this platform\n");
    return 1;
  }

  // Spawn an in-process server unless an external one was named.
  std::unique_ptr<service::Service> svc;
  std::unique_ptr<net::Server> server;
  std::thread loop;
  std::filesystem::path store_dir;
  const bool in_process = port == 0;
  if (in_process) {
    service::ServiceOptions options;
    // Fresh per-run store: a stale journal from a previous run would let
    // the concurrent campaign resume-and-finish instantly.
    store_dir = std::filesystem::temp_directory_path() /
                ("ftb_loadgen_" + std::to_string(::getpid()));
    std::filesystem::create_directories(store_dir);
    options.store_dir = store_dir.string();
    svc = std::make_unique<service::Service>(options);
    server = std::make_unique<net::Server>(*svc);
    svc->attach(server.get());
    loop = std::thread([&] { server->run(); });
    port = server->port();
  }

  // Warm store: a few published daxpy boundaries keyed by seed.
  const fi::ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  const std::uint64_t sites = golden.dynamic_instructions();
  std::vector<std::string> keys;
  if (in_process) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const boundary::FaultToleranceBoundary boundary(
          std::vector<double>(sites, 1e-6));
      std::string error;
      if (!svc->store().publish({"daxpy", "tiny", seed}, boundary, &error)) {
        std::fprintf(stderr, "loadgen_service: publish failed: %s\n",
                     error.c_str());
        return 1;
      }
      keys.push_back("daxpy@tiny@" + std::to_string(seed));
    }
  } else {
    // Against an external daemon, query whatever it has loaded.
    net::ClientOptions options;
    options.host = host;
    options.port = port;
    net::Client client(options);
    std::string error;
    const auto reply = client.call(service::make_list_boundaries(), &error);
    const auto list = reply.has_value()
                          ? service::parse_boundary_list_ok(*reply, &error)
                          : std::nullopt;
    if (!list.has_value() || list->entries.empty()) {
      std::fprintf(stderr, "loadgen_service: no boundaries on %s:%u (%s)\n",
                   host.c_str(), port, error.c_str());
      return 1;
    }
    for (const auto& info : list->entries) keys.push_back(info.key);
  }

  std::printf("loadgen_service: %d connections, %u ms per phase, %zu warm "
              "keys on %s:%u\n",
              connections, duration_ms, keys.size(), host.c_str(), port);

  const PhaseResult idle = run_phase("idle", host, port, connections,
                                     duration_ms, keys, sites);

  // Campaign phase: submit a job on its own connection, measure while it
  // runs, then wait for CampaignDone so the server ends quiesced.
  PhaseResult busy;
  bool campaign_finished_early = false;
  if (campaign_batch > 0) {
    net::ClientOptions options;
    options.host = host;
    options.port = port;
    net::Client submitter(options);
    std::string error;
    service::SubmitCampaignReq req;
    req.kernel = cli.get("campaign-kernel", "daxpy");
    req.preset = cli.get("campaign-preset", "default");
    req.seed = 99;
    req.batch = campaign_batch;
    req.workers = static_cast<std::uint32_t>(std::max<std::int64_t>(
        1, cli.get_int("campaign-workers", 2)));
    req.flush_every = 128;
    if (!submitter.connect(&error) ||
        !submitter.send(service::make_submit_campaign(req), &error)) {
      std::fprintf(stderr, "loadgen_service: submit failed: %s\n",
                   error.c_str());
      return 1;
    }
    const auto accepted = submitter.recv(&error, 30000);
    if (!accepted.has_value() ||
        !service::parse_campaign_accepted(*accepted).has_value()) {
      std::fprintf(stderr, "loadgen_service: campaign not accepted: %s\n",
                   error.c_str());
      return 1;
    }

    busy = run_phase("campaign", host, port, connections, duration_ms, keys,
                     sites);

    // Drain the progress stream to completion.  If the whole drain is
    // near-instant the campaign had already finished inside the measured
    // window, which weakens the "under concurrent campaign" claim.
    const auto drain_begin = Clock::now();
    for (;;) {
      const auto frame = submitter.recv(&error, 120000);
      if (!frame.has_value()) {
        std::fprintf(stderr, "loadgen_service: lost campaign stream: %s\n",
                     error.c_str());
        return 1;
      }
      if (const auto done = service::parse_campaign_done(*frame)) {
        if (!done->ok && !done->stopped) {
          std::fprintf(stderr, "loadgen_service: campaign failed: %s\n",
                       done->error.c_str());
          return 1;
        }
        break;
      }
    }
    campaign_finished_early = (Clock::now() - drain_begin) <
                              std::chrono::milliseconds(50);
  }

  util::Table table({"phase", "requests", "errors", "qps", "p50_us", "p99_us"});
  table.add_row({idle.name, util::format("%llu", (unsigned long long)idle.requests),
                 util::format("%llu", (unsigned long long)idle.errors),
                 util::format("%.0f", idle.qps()),
                 util::format("%.1f", idle.p50_us),
                 util::format("%.1f", idle.p99_us)});
  if (campaign_batch > 0) {
    table.add_row({busy.name,
                   util::format("%llu", (unsigned long long)busy.requests),
                   util::format("%llu", (unsigned long long)busy.errors),
                   util::format("%.0f", busy.qps()),
                   util::format("%.1f", busy.p50_us),
                   util::format("%.1f", busy.p99_us)});
  }
  std::fputs(table.render("query-plane load").c_str(), stdout);
  if (campaign_batch > 0 && idle.p99_us > 0) {
    std::printf("p99 ratio (campaign/idle): %.2fx%s\n",
                busy.p99_us / idle.p99_us,
                campaign_finished_early
                    ? "  (campaign finished inside the measured window; "
                      "raise --campaign-batch)"
                    : "");
  }

  if (in_process) {
    svc->request_shutdown();
    loop.join();
    std::filesystem::remove_all(store_dir);
  }
  return 0;
}
