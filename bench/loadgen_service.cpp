// Multi-connection load generator for ftb_served's query plane.
//
// Spawns an in-process Server + Service pair on an ephemeral loopback port
// (or targets an external daemon via --port), warms the store with
// published boundaries, and hammers PredictFlip from N client threads.
// Two measured phases:
//
//   idle      -- queries only
//   campaign  -- the same load while a campaign job runs on the server
//
// --workers N adds a third phase: the same campaign again with N in-process
// WorkerAgents attached to the worker plane, so the job executes
// distributed.  The JSON gains a "distributed" section comparing local and
// distributed campaign wall-clock (speedup) plus the query-plane p99 under
// each.  --p99-ratio-max R turns the campaign/idle p99 ratio into a
// contract: exceed it and the run exits 2 (CI pairs this with ftb_served
// --campaign-cpus to prove pinning keeps the query plane flat).
//
// Reported per phase: request count, Busy replies, QPS, p50/p99 latency of
// admitted requests.  Clients back off on Busy (honouring the server's
// retry-after hint with multiplicative growth), so the generator doubles as
// a well-behaved overload client.  --overload spawns the in-process server
// with deliberately tiny admission caps and asserts the shedding contract:
// Busy frames are emitted, and the p99 of *admitted* requests stays bounded
// (no silent queue growth).  --json-out writes the phase table as JSON
// (schema ftb.bench.service/2, self-describing: --run-ts stamp, campaign
// kernel/preset, warmed boundary keys) for the committed BENCH_service.json.
//
//   loadgen_service --connections 4 --duration-ms 2000
//                   --campaign-batch 20000 [--host H --port P]
//                   [--deadline-ms D] [--json-out BENCH_service.json]
//   loadgen_service --overload --connections 8 --duration-ms 1000
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "kernels/registry.h"
#include "net/client.h"
#include "net/server.h"
#include "service/service.h"
#include "service/worker.h"
#include "telemetry/events.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

struct PhaseResult {
  std::string name;
  std::uint64_t requests = 0;  // admitted (answered) requests
  std::uint64_t busy = 0;      // Busy replies (shed + retried after backoff)
  std::uint64_t errors = 0;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;

  double qps() const { return seconds > 0 ? requests / seconds : 0.0; }
};

double percentile_us(std::vector<std::uint64_t>& ns, double q) {
  if (ns.empty()) return 0.0;
  std::sort(ns.begin(), ns.end());
  const std::size_t index = std::min(
      ns.size() - 1, static_cast<std::size_t>(q * static_cast<double>(ns.size())));
  return static_cast<double>(ns[index]) / 1e3;
}

/// One measurement phase: `connections` threads each run a dedicated
/// client in a closed loop of PredictFlip calls for `duration_ms`.
PhaseResult run_phase(const std::string& name, const std::string& host,
                      std::uint16_t port, int connections,
                      std::uint32_t duration_ms,
                      const std::vector<std::string>& keys,
                      std::uint64_t sites, std::uint32_t deadline_ms = 0) {
  std::vector<std::vector<std::uint64_t>> latencies(connections);
  std::vector<std::uint64_t> errors(connections, 0);
  std::vector<std::uint64_t> busies(connections, 0);
  std::vector<std::thread> threads;
  std::atomic<bool> go{false};
  for (int t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      ftb::net::ClientOptions options;
      options.host = host;
      options.port = port;
      options.deadline_ms = deadline_ms;
      ftb::net::Client client(options);
      std::string error;
      if (!client.connect(&error)) {
        ++errors[t];
        return;
      }
      latencies[t].reserve(1 << 18);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      const auto deadline =
          Clock::now() + std::chrono::milliseconds(duration_ms);
      std::uint64_t i = static_cast<std::uint64_t>(t) * 7919;
      std::uint64_t backoff_ms = 0;  // grows while consecutive Busys arrive
      while (Clock::now() < deadline) {
        ftb::service::PredictFlipReq req;
        req.key = keys[i % keys.size()];
        req.site = (i * 2654435761u) % sites;
        req.bit = static_cast<std::uint32_t>(i % 64);
        ++i;
        const auto begin = Clock::now();
        const auto reply =
            client.call(ftb::service::make_predict_flip(req), &error);
        const auto end = Clock::now();
        if (!reply.has_value()) {
          ++errors[t];
          continue;
        }
        // Shed: back off as the server asks, doubling while it keeps
        // saying Busy, and do not count the attempt as admitted.
        if (const auto busy = ftb::service::parse_busy(*reply)) {
          ++busies[t];
          backoff_ms = std::min<std::uint64_t>(
              std::max<std::uint64_t>(busy->retry_after_ms,
                                      backoff_ms == 0 ? 1 : backoff_ms * 2),
              100);
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
          continue;
        }
        backoff_ms = 0;
        if (!ftb::service::parse_predict_flip_ok(*reply).has_value()) {
          ++errors[t];
          continue;
        }
        latencies[t].push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                .count()));
      }
    });
  }
  const auto begin = Clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();
  const auto end = Clock::now();

  PhaseResult result;
  result.name = name;
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - begin)
          .count();
  std::vector<std::uint64_t> merged;
  for (int t = 0; t < connections; ++t) {
    result.requests += latencies[t].size();
    result.errors += errors[t];
    result.busy += busies[t];
    merged.insert(merged.end(), latencies[t].begin(), latencies[t].end());
  }
  result.p50_us = percentile_us(merged, 0.50);
  result.p99_us = percentile_us(merged, 0.99);
  return result;
}

/// One campaign phase: submit a job on its own connection, run the query
/// load while it executes, then drain the progress stream to CampaignDone.
/// `wall_ms` is ack-to-done -- the campaign's wall-clock under identical
/// concurrent query load, so local and distributed runs compare fairly.
struct CampaignPhase {
  PhaseResult phase;
  double wall_ms = 0.0;
  bool finished_early = false;
  bool ok = false;
};

CampaignPhase run_campaign_phase(const std::string& name,
                                 const ftb::service::SubmitCampaignReq& req,
                                 const std::string& host, std::uint16_t port,
                                 int connections, std::uint32_t duration_ms,
                                 const std::vector<std::string>& keys,
                                 std::uint64_t sites,
                                 std::uint32_t deadline_ms) {
  CampaignPhase result;
  ftb::net::ClientOptions options;
  options.host = host;
  options.port = port;
  ftb::net::Client submitter(options);
  std::string error;
  if (!submitter.connect(&error) ||
      !submitter.send(ftb::service::make_submit_campaign(req), &error)) {
    std::fprintf(stderr, "loadgen_service: submit failed: %s\n", error.c_str());
    return result;
  }
  const auto accepted = submitter.recv(&error, 30000);
  if (!accepted.has_value() ||
      !ftb::service::parse_campaign_accepted(*accepted).has_value()) {
    std::fprintf(stderr, "loadgen_service: campaign not accepted: %s\n",
                 error.c_str());
    return result;
  }
  const auto ack_time = Clock::now();

  result.phase = run_phase(name, host, port, connections, duration_ms, keys,
                           sites, deadline_ms);

  // Drain the progress stream to completion.  If the whole drain is
  // near-instant the campaign had already finished inside the measured
  // window, which weakens the "under concurrent campaign" claim.
  const auto drain_begin = Clock::now();
  for (;;) {
    const auto frame = submitter.recv(&error, 120000);
    if (!frame.has_value()) {
      std::fprintf(stderr, "loadgen_service: lost campaign stream: %s\n",
                   error.c_str());
      return result;
    }
    if (const auto done = ftb::service::parse_campaign_done(*frame)) {
      if (!done->ok && !done->stopped) {
        std::fprintf(stderr, "loadgen_service: campaign failed: %s\n",
                     done->error.c_str());
        return result;
      }
      break;
    }
  }
  result.wall_ms = std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
                       Clock::now() - ack_time)
                       .count();
  result.finished_early =
      (Clock::now() - drain_begin) < std::chrono::milliseconds(50);
  result.ok = true;
  return result;
}

/// Crude counter extraction from the ftb.telemetry.metrics/1 JSON, for
/// polling the dispatcher's worker counters over the Stats RPC.
std::uint64_t stats_counter(const std::string& host, std::uint16_t port,
                            const std::string& counter) {
  ftb::net::ClientOptions options;
  options.host = host;
  options.port = port;
  ftb::net::Client client(options);
  std::string error;
  const auto reply = client.call(ftb::service::make_stats(), &error);
  if (!reply.has_value()) return 0;
  const auto ok = ftb::service::parse_stats_ok(*reply);
  if (!ok.has_value()) return 0;
  const std::string needle = "\"" + counter + "\": ";
  const auto pos = ok->metrics_json.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(ok->metrics_json.c_str() + pos + needle.size(),
                       nullptr, 10);
}

/// Everything that makes a committed JSON entry self-describing across
/// PRs: which run produced it (a caller-supplied stamp, e.g. the commit
/// SHA -- never wall-clock, so reruns stay byte-identical) and which
/// kernel/preset pairs it exercised.
struct JsonMeta {
  std::string run_ts;                      // --run-ts, verbatim
  std::string campaign_kernel;
  std::string campaign_preset;
  unsigned host_cpus = 0;                  // hardware_concurrency at run time
  std::vector<std::string> boundary_keys;  // warmed store keys queried
};

/// Local-vs-distributed campaign wall-clock comparison (--workers N).
struct DistributedResult {
  int workers = 0;
  double local_ms = 0.0;        // campaign wall-clock, no remote workers
  double distributed_ms = 0.0;  // same campaign with N workers attached

  double speedup() const {
    return distributed_ms > 0 ? local_ms / distributed_ms : 0.0;
  }

  /// Distributed speedup needs at least workers+1 CPUs (the server plus
  /// each agent); on a smaller host the arms time-share one core and the
  /// "speedup" only measures scheduler overhead, so the report must carry
  /// the caveat rather than a bare misleading number.
  bool cpu_constrained(unsigned host_cpus) const {
    return host_cpus != 0 &&
           host_cpus < static_cast<unsigned>(workers) + 1;
  }
};

/// Serialises the measured phases as JSON so CI can commit the trajectory.
bool write_json(const std::string& path, int connections,
                std::uint32_t duration_ms, const JsonMeta& meta,
                const std::vector<PhaseResult>& phases,
                const DistributedResult* distributed = nullptr) {
  std::string out = "{\n  \"schema\": \"ftb.bench.service/2\",\n";
  out += "  \"run_ts\": \"" + meta.run_ts + "\",\n";
  out += "  \"campaign\": {\"kernel\": \"" + meta.campaign_kernel +
         "\", \"preset\": \"" + meta.campaign_preset + "\"},\n";
  out += "  \"host_cpus\": " + std::to_string(meta.host_cpus) + ",\n";
  out += "  \"boundary_keys\": [";
  for (std::size_t i = 0; i < meta.boundary_keys.size(); ++i) {
    out += (i ? ", \"" : "\"") + meta.boundary_keys[i] + "\"";
  }
  out += "],\n";
  out += "  \"connections\": " + std::to_string(connections) + ",\n";
  out += "  \"duration_ms\": " + std::to_string(duration_ms) + ",\n";
  if (distributed != nullptr) {
    const bool constrained = distributed->cpu_constrained(meta.host_cpus);
    char dbuf[512];
    std::snprintf(
        dbuf, sizeof(dbuf),
        "  \"distributed\": {\"workers\": %d, \"local_ms\": %.0f, "
        "\"distributed_ms\": %.0f, \"speedup\": %.2f, "
        "\"cpu_constrained\": %s%s},\n",
        distributed->workers, distributed->local_ms,
        distributed->distributed_ms, distributed->speedup(),
        constrained ? "true" : "false",
        constrained
            ? ", \"note\": \"host_cpus < workers+1: the arms time-shared "
              "the same cores, so speedup measures scheduler overhead, not "
              "distribution\""
            : "");
    out += dbuf;
  }
  out += "  \"phases\": {";
  bool first = true;
  char buf[256];
  for (const PhaseResult& phase : phases) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n    \"%s\": {\"requests\": %llu, \"busy\": %llu, "
                  "\"errors\": %llu, \"qps\": %.0f, \"p50_us\": %.1f, "
                  "\"p99_us\": %.1f}",
                  first ? "" : ",", phase.name.c_str(),
                  (unsigned long long)phase.requests,
                  (unsigned long long)phase.busy,
                  (unsigned long long)phase.errors, phase.qps(),
                  phase.p50_us, phase.p99_us);
    out += buf;
    first = false;
  }
  out += "\n  }\n}\n";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok = std::fwrite(out.data(), 1, out.size(), file) == out.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftb;

  util::Cli cli(argc, argv);
  cli.describe("connections", "client connections / threads (default 4)");
  cli.describe("duration-ms", "measured time per phase (default 2000)");
  cli.describe("campaign-batch",
               "experiments in the concurrent campaign (0 disables; "
               "default 20000)");
  cli.describe("campaign-workers", "sandbox workers for the campaign (2)");
  cli.describe("campaign-kernel", "kernel for the campaign (daxpy)");
  cli.describe("campaign-preset", "preset for the campaign (default)");
  cli.describe("host", "target an external daemon instead (with --port)");
  cli.describe("port", "external daemon port (0 = spawn in-process)");
  cli.describe("deadline-ms", "per-request deadline stamped in frames (0)");
  cli.describe("json-out", "write phase results as JSON here");
  cli.describe("run-ts",
               "run identifier stamped into the JSON (pass the commit SHA "
               "or build id -- not wall-clock -- so reruns stay "
               "byte-identical)");
  cli.describe("overload",
               "overload mode: tiny admission caps on the in-process "
               "server; asserts Busy shedding and a bounded admitted p99");
  cli.describe("overload-p99-ms",
               "admitted-request p99 ceiling for --overload (default 250)");
  cli.describe("workers",
               "in-process WorkerAgents for a distributed campaign phase "
               "(default 0 = local only)");
  cli.describe("campaign-cpus",
               "pin the in-process server's campaign plane to these CPUs, "
               "comma-separated (default: unpinned)");
  cli.describe("p99-ratio-max",
               "contract: fail (exit 2) when campaign p99 exceeds idle p99 "
               "by more than this factor, e.g. 1.45 (default 0 = off)");
  if (cli.has("help")) {
    cli.print_help("ftb_served query-plane load generator");
    return 0;
  }

  const int connections =
      static_cast<int>(std::max<std::int64_t>(1, cli.get_int("connections", 4)));
  const auto duration_ms =
      static_cast<std::uint32_t>(std::max<std::int64_t>(
          100, cli.get_int("duration-ms", 2000)));
  const auto campaign_batch =
      static_cast<std::uint64_t>(std::max<std::int64_t>(
          0, cli.get_int("campaign-batch", 20000)));
  const std::string host = cli.get("host", "127.0.0.1");
  auto port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  const auto deadline_ms =
      static_cast<std::uint32_t>(cli.get_int("deadline-ms", 0));
  const std::string json_out = cli.get("json-out");
  const bool overload = cli.get_bool("overload");
  const int workers = static_cast<int>(
      std::max<std::int64_t>(0, cli.get_int("workers", 0)));
  const double p99_ratio_max =
      std::strtod(cli.get("p99-ratio-max", "0").c_str(), nullptr);

  if (!net::net_supported()) {
    std::fprintf(stderr, "loadgen_service: no socket support on this platform\n");
    return 1;
  }
  if (overload && port != 0) {
    std::fprintf(stderr,
                 "loadgen_service: --overload needs the in-process server\n");
    return 1;
  }

  // Spawn an in-process server unless an external one was named.
  telemetry::Telemetry telemetry;
  telemetry.set_enabled(true);
  std::unique_ptr<service::Service> svc;
  std::unique_ptr<net::Server> server;
  std::thread loop;
  std::filesystem::path store_dir;
  const bool in_process = port == 0;
  if (in_process) {
    service::ServiceOptions options;
    if (overload) {
      // Deliberately starved admission plane: a handful of slots against
      // N closed-loop connections guarantees shedding.
      options.admission_queue_max = 4;
      options.per_conn_inflight_max = 2;
      options.admission_batch = 1;
      options.busy_retry_ms = 1;
    }
    // Fresh per-run store: a stale journal from a previous run would let
    // the concurrent campaign resume-and-finish instantly.
    store_dir = std::filesystem::temp_directory_path() /
                ("ftb_loadgen_" + std::to_string(::getpid()));
    std::filesystem::create_directories(store_dir);
    options.store_dir = store_dir.string();
    options.telemetry = &telemetry;  // the worker-attach poll reads Stats
    if (const std::string cpus = cli.get("campaign-cpus"); !cpus.empty()) {
      for (std::size_t pos = 0; pos < cpus.size();) {
        std::size_t end = cpus.find(',', pos);
        if (end == std::string::npos) end = cpus.size();
        options.campaign_cpus.push_back(
            std::atoi(cpus.substr(pos, end - pos).c_str()));
        pos = end + 1;
      }
    }
    svc = std::make_unique<service::Service>(options);
    server = std::make_unique<net::Server>(*svc);
    svc->attach(server.get());
    loop = std::thread([&] { server->run(); });
    port = server->port();
  }

  // Warm store: a few published daxpy boundaries keyed by seed.
  const fi::ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  const std::uint64_t sites = golden.dynamic_instructions();
  std::vector<std::string> keys;
  if (in_process) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const boundary::FaultToleranceBoundary boundary(
          std::vector<double>(sites, 1e-6));
      std::string error;
      if (!svc->store().publish({"daxpy", "tiny", seed}, boundary, &error)) {
        std::fprintf(stderr, "loadgen_service: publish failed: %s\n",
                     error.c_str());
        return 1;
      }
      keys.push_back("daxpy@tiny@" + std::to_string(seed));
    }
  } else {
    // Against an external daemon, query whatever it has loaded.
    net::ClientOptions options;
    options.host = host;
    options.port = port;
    net::Client client(options);
    std::string error;
    const auto reply = client.call(service::make_list_boundaries(), &error);
    const auto list = reply.has_value()
                          ? service::parse_boundary_list_ok(*reply, &error)
                          : std::nullopt;
    if (!list.has_value() || list->entries.empty()) {
      std::fprintf(stderr, "loadgen_service: no boundaries on %s:%u (%s)\n",
                   host.c_str(), port, error.c_str());
      return 1;
    }
    for (const auto& info : list->entries) keys.push_back(info.key);
  }

  JsonMeta meta;
  meta.run_ts = cli.get("run-ts", "unset");
  meta.campaign_kernel = cli.get("campaign-kernel", "daxpy");
  meta.campaign_preset = cli.get("campaign-preset", "default");
  meta.host_cpus = std::thread::hardware_concurrency();
  meta.boundary_keys = keys;

  std::printf("loadgen_service: %d connections, %u ms per phase, %zu warm "
              "keys on %s:%u%s\n",
              connections, duration_ms, keys.size(), host.c_str(), port,
              overload ? " (overload mode)" : "");

  // Overload mode is its own experiment: saturate the starved admission
  // plane, then check the shedding contract and leave.
  if (overload) {
    const PhaseResult shed = run_phase("overload", host, port, connections,
                                       duration_ms, keys, sites, deadline_ms);
    util::Table table(
        {"phase", "requests", "busy", "errors", "qps", "p50_us", "p99_us"});
    table.add_row({shed.name,
                   util::format("%llu", (unsigned long long)shed.requests),
                   util::format("%llu", (unsigned long long)shed.busy),
                   util::format("%llu", (unsigned long long)shed.errors),
                   util::format("%.0f", shed.qps()),
                   util::format("%.1f", shed.p50_us),
                   util::format("%.1f", shed.p99_us)});
    std::fputs(table.render("query-plane overload").c_str(), stdout);
    if (!json_out.empty() &&
        !write_json(json_out, connections, duration_ms, meta, {shed})) {
      std::fprintf(stderr, "loadgen_service: cannot write %s\n",
                   json_out.c_str());
      return 1;
    }
    int rc = 0;
    if (shed.busy == 0) {
      std::fprintf(stderr,
                   "loadgen_service: FAIL: no Busy frames under overload -- "
                   "the admission queue is not shedding\n");
      rc = 2;
    }
    const double p99_ceiling_us =
        static_cast<double>(cli.get_int("overload-p99-ms", 250)) * 1000.0;
    if (shed.requests == 0 || shed.p99_us > p99_ceiling_us) {
      std::fprintf(stderr,
                   "loadgen_service: FAIL: admitted p99 %.1f us exceeds the "
                   "%.0f us ceiling (queue growth is not bounded)\n",
                   shed.p99_us, p99_ceiling_us);
      rc = 2;
    }
    if (rc == 0) {
      std::printf("overload contract held: %llu Busy sheds, admitted p99 "
                  "%.1f us\n",
                  (unsigned long long)shed.busy, shed.p99_us);
    }
    if (in_process) {
      svc->request_shutdown();
      loop.join();
      std::filesystem::remove_all(store_dir);
    }
    return rc;
  }

  const PhaseResult idle = run_phase("idle", host, port, connections,
                                     duration_ms, keys, sites, deadline_ms);

  // Campaign phase: submit a job on its own connection, measure while it
  // runs, then wait for CampaignDone so the server ends quiesced.
  PhaseResult busy;
  PhaseResult distributed_phase;
  DistributedResult distributed;
  bool campaign_finished_early = false;
  bool have_distributed = false;
  if (campaign_batch > 0) {
    service::SubmitCampaignReq req;
    req.kernel = cli.get("campaign-kernel", "daxpy");
    req.preset = cli.get("campaign-preset", "default");
    req.seed = 99;
    req.batch = campaign_batch;
    req.workers = static_cast<std::uint32_t>(std::max<std::int64_t>(
        1, cli.get_int("campaign-workers", 2)));
    req.flush_every = 128;
    const CampaignPhase local =
        run_campaign_phase("campaign", req, host, port, connections,
                           duration_ms, keys, sites, deadline_ms);
    if (!local.ok) return 1;
    busy = local.phase;
    campaign_finished_early = local.finished_early;

    // Distributed phase: the same campaign again (fresh seed, so no resume
    // short-circuit) with N WorkerAgents attached to the worker plane.
    if (workers > 0) {
      std::vector<std::unique_ptr<service::WorkerAgent>> agents;
      std::vector<std::thread> agent_threads;
      for (int w = 0; w < workers; ++w) {
        service::WorkerAgentOptions wopts;
        wopts.host = host;
        wopts.port = port;
        wopts.name = "bench-w" + std::to_string(w);
        wopts.pool_workers = req.workers;
        agents.push_back(std::make_unique<service::WorkerAgent>(wopts));
        agent_threads.emplace_back([agent = agents.back().get()] {
          std::string error;
          agent->serve(&error);
        });
      }
      bool attached = false;
      for (int waited_ms = 0; waited_ms < 10000; waited_ms += 100) {
        if (stats_counter(host, port, "dispatch.workers_connected") >=
            static_cast<std::uint64_t>(workers)) {
          attached = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      if (!attached) {
        std::fprintf(stderr,
                     "loadgen_service: %d workers never attached to the "
                     "worker plane\n",
                     workers);
        for (auto& agent : agents) agent->request_stop();
        for (std::thread& thread : agent_threads) thread.join();
        return 1;
      }
      req.seed = 98;
      const CampaignPhase dist =
          run_campaign_phase("campaign_distributed", req, host, port,
                             connections, duration_ms, keys, sites,
                             deadline_ms);
      for (auto& agent : agents) agent->request_stop();
      for (std::thread& thread : agent_threads) thread.join();
      if (!dist.ok) return 1;
      distributed_phase = dist.phase;
      distributed.workers = workers;
      distributed.local_ms = local.wall_ms;
      distributed.distributed_ms = dist.wall_ms;
      have_distributed = true;
    }
  }

  util::Table table(
      {"phase", "requests", "busy", "errors", "qps", "p50_us", "p99_us"});
  table.add_row({idle.name, util::format("%llu", (unsigned long long)idle.requests),
                 util::format("%llu", (unsigned long long)idle.busy),
                 util::format("%llu", (unsigned long long)idle.errors),
                 util::format("%.0f", idle.qps()),
                 util::format("%.1f", idle.p50_us),
                 util::format("%.1f", idle.p99_us)});
  if (campaign_batch > 0) {
    table.add_row({busy.name,
                   util::format("%llu", (unsigned long long)busy.requests),
                   util::format("%llu", (unsigned long long)busy.busy),
                   util::format("%llu", (unsigned long long)busy.errors),
                   util::format("%.0f", busy.qps()),
                   util::format("%.1f", busy.p50_us),
                   util::format("%.1f", busy.p99_us)});
  }
  if (have_distributed) {
    table.add_row(
        {distributed_phase.name,
         util::format("%llu", (unsigned long long)distributed_phase.requests),
         util::format("%llu", (unsigned long long)distributed_phase.busy),
         util::format("%llu", (unsigned long long)distributed_phase.errors),
         util::format("%.0f", distributed_phase.qps()),
         util::format("%.1f", distributed_phase.p50_us),
         util::format("%.1f", distributed_phase.p99_us)});
  }
  std::fputs(table.render("query-plane load").c_str(), stdout);
  if (!json_out.empty()) {
    std::vector<PhaseResult> phases{idle};
    if (campaign_batch > 0) phases.push_back(busy);
    if (have_distributed) phases.push_back(distributed_phase);
    if (!write_json(json_out, connections, duration_ms, meta, phases,
                    have_distributed ? &distributed : nullptr)) {
      std::fprintf(stderr, "loadgen_service: cannot write %s\n",
                   json_out.c_str());
      return 1;
    }
    std::printf("results -> %s\n", json_out.c_str());
  }
  double p99_ratio = 0.0;
  if (campaign_batch > 0 && idle.p99_us > 0) {
    p99_ratio = busy.p99_us / idle.p99_us;
    std::printf("p99 ratio (campaign/idle): %.2fx%s\n", p99_ratio,
                campaign_finished_early
                    ? "  (campaign finished inside the measured window; "
                      "raise --campaign-batch)"
                    : "");
  }
  if (have_distributed) {
    std::printf("campaign wall-clock: local %.0f ms, distributed %.0f ms "
                "with %d workers (%.2fx speedup)\n",
                distributed.local_ms, distributed.distributed_ms,
                distributed.workers, distributed.speedup());
    if (distributed.cpu_constrained(meta.host_cpus)) {
      std::printf("  NOTE: host has %u CPUs for %d workers + server; the "
                  "speedup above measures time-sharing, not distribution\n",
                  meta.host_cpus, distributed.workers);
    }
  }

  if (in_process) {
    svc->request_shutdown();
    loop.join();
    std::filesystem::remove_all(store_dir);
  }
  if (p99_ratio_max > 0 && p99_ratio > p99_ratio_max) {
    std::fprintf(stderr,
                 "loadgen_service: FAIL: campaign/idle p99 ratio %.2fx "
                 "exceeds the %.2fx contract\n",
                 p99_ratio, p99_ratio_max);
    return 2;
  }
  return 0;
}
