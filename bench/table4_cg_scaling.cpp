// Regenerates paper Table 4: a *fixed* budget of 1000 samples keeps working
// as the conjugate-gradient problem -- and with it the number of dynamic
// instructions -- grows.  The paper used 20x20 and 100x100 matrices
// (254,784 and 16,789,952 dynamic instructions); we substitute two grid
// sizes scaled to a single-core budget and estimate the large input's
// ground truth from a random probe set (documented in DESIGN.md), which is
// exactly the quantity the paper's SDC-ratio column needs.
//
// Expected shape (paper): precision / uncertainty / recall stay high for
// both sizes even though the fixed 1000 samples are a 100x smaller fraction
// of the larger run's space.
#include "common/bench_common.h"

#include <vector>

#include "boundary/metrics.h"
#include "boundary/predictor.h"
#include "campaign/ground_truth.h"
#include "campaign/inference.h"
#include "kernels/cg.h"
#include "util/stats.h"

namespace {

struct SizeCase {
  std::size_t grid;
  std::size_t iterations;
  bool exhaustive_truth;  // small case: full table; large case: probes
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ftb;
  const util::Cli cli(argc, argv);
  bench::BenchContext context = bench::BenchContext::from_cli(cli);
  if (!cli.has("trials")) context.trials = 5;
  const auto samples = static_cast<std::uint64_t>(cli.get_int("samples", 1000));
  const auto probes = static_cast<std::uint64_t>(cli.get_int("probes", 20000));
  bench::print_banner(
      "Table 4 -- CG scaling with a fixed 1000-sample budget",
      "Two CG problem sizes; the same absolute sample budget becomes a far\n"
      "smaller fraction of the larger space yet keeps its prediction "
      "quality.",
      context);

  const std::vector<SizeCase> cases = {
      {6, 30, true},    // "small": exhaustive ground truth
      {12, 100, false},  // "large": probed ground truth
  };

  util::ThreadPool& pool = util::default_pool();
  util::Table table({"Input", "DynInstrs", "SampleFrac", "SDC ratio",
                     "predict SDC ratio", "precision", "uncertainty",
                     "recall"});

  for (const SizeCase& size_case : cases) {
    kernels::CgConfig config;
    config.nx = config.ny = size_case.grid;
    config.iterations = size_case.iterations;
    const kernels::CgProgram program(config);
    const fi::GoldenRun golden = fi::run_golden(program);
    const std::uint64_t space = golden.sample_space_size();

    // Ground truth: exhaustive for the small case, probe-estimated for the
    // large one (same substitution DESIGN.md documents).
    campaign::GroundTruth exhaustive;
    campaign::SampledGroundTruth probed;
    double truth_sdc = 0.0;
    std::string truth_cell;
    if (size_case.exhaustive_truth) {
      exhaustive =
          campaign::GroundTruth::compute(program, golden, pool,
                                         context.use_cache);
      truth_sdc = exhaustive.overall_sdc_ratio();
      truth_cell = util::percent(truth_sdc);
    } else {
      probed = campaign::estimate_ground_truth(program, golden, probes,
                                               context.seed ^ 0x5eedull, pool);
      truth_sdc = probed.sdc_ratio();
      // Statistical fault injection (paper ref [18]): report the 95% Wilson
      // interval of the probe-estimated ratio.
      const util::Interval ci =
          util::wilson_interval(probed.tallies.sdc, probed.tallies.total());
      truth_cell = util::format("%s [%s, %s]", util::percent(truth_sdc).c_str(),
                                util::percent(ci.lo).c_str(),
                                util::percent(ci.hi).c_str());
    }

    std::vector<double> predicted, precision, uncertainty, recall;
    for (std::size_t trial = 0; trial < context.trials; ++trial) {
      campaign::InferenceOptions options;
      options.sample_fraction =
          static_cast<double>(samples) / static_cast<double>(space);
      options.seed = context.seed + trial;
      options.filter = true;
      const campaign::InferenceResult result =
          campaign::infer_uniform(program, golden, options, pool);

      predicted.push_back(
          boundary::predicted_overall_sdc(result.boundary, golden.trace));
      const util::Confusion self = campaign::confusion_on_records(
          result.boundary, golden.trace, result.records);
      uncertainty.push_back(self.precision());
      if (size_case.exhaustive_truth) {
        const auto metrics = boundary::evaluate_boundary(
            result.boundary, golden.trace, exhaustive.outcomes(),
            result.sampled_ids);
        precision.push_back(metrics.precision());
        recall.push_back(metrics.recall());
      } else {
        const util::Confusion on_probes = campaign::confusion_on_records(
            result.boundary, golden.trace, probed.records);
        precision.push_back(on_probes.precision());
        recall.push_back(on_probes.recall());
      }
    }

    table.add_row(
        {util::format("%zux%zu grid", size_case.grid, size_case.grid),
         util::format("%llu", static_cast<unsigned long long>(
                                  golden.dynamic_instructions())),
         util::percent(static_cast<double>(samples) /
                           static_cast<double>(space),
                       3),
         truth_cell,
         util::format_percent_pm(util::mean_std(predicted)),
         util::format_percent_pm(util::mean_std(precision)),
         util::format_percent_pm(util::mean_std(uncertainty)),
         util::format_percent_pm(util::mean_std(recall))});
  }

  bench::print_table(table, context, "Table 4");
  return 0;
}
