// Ablation beyond the paper: does a boundary inferred under the paper's
// single-bit-flip model transfer to *double-bit* faults?
//
// The fault tolerance boundary is defined over the injected error
// *magnitude*, not over bit patterns (Section 3.2's f_i(eps)), so nothing in
// its construction is specific to single flips.  This bench samples random
// double-bit experiments, compares their outcome distribution to the
// single-bit one, and scores the single-bit-inferred boundary's predictions
// of double-bit outcomes (predicted masked iff |corrupted - golden| <=
// threshold).  High precision here means the boundary really captured a
// magnitude threshold rather than a bit-pattern artefact.
#include "common/bench_common.h"

#include <cmath>

#include "boundary/predictor.h"
#include "campaign/inference.h"
#include "fi/fpbits.h"
#include "util/rng.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace ftb;
  const util::Cli cli(argc, argv);
  const bench::BenchContext context = bench::BenchContext::from_cli(cli);
  const auto probes = static_cast<std::uint64_t>(cli.get_int("probes", 4000));
  bench::print_banner(
      "Ablation -- single-bit boundary vs double-bit faults",
      "Boundary inferred from 2% single-bit sampling, evaluated on random\n"
      "double-bit-upset experiments (outcome rates + prediction quality).",
      context);

  util::ThreadPool& pool = util::default_pool();
  util::Table table({"Name", "1-bit SDC", "2-bit SDC", "2-bit Crash",
                     "precision on 2-bit", "recall on 2-bit"});

  for (const std::string& name : context.kernel_names) {
    const bench::PreparedKernel kernel =
        bench::prepare_kernel(name, context.preset);
    const fi::GoldenRun& golden = kernel.golden;

    // Single-bit inferred boundary (the paper's method, unchanged).
    campaign::InferenceOptions options;
    options.sample_fraction = 0.02;
    options.filter = true;
    options.seed = context.seed;
    const campaign::InferenceResult inference =
        campaign::infer_uniform(*kernel.program, golden, options, pool);
    const double single_bit_sdc =
        static_cast<double>(inference.counts.sdc) /
        static_cast<double>(inference.counts.total());

    // Random double-bit experiments.
    util::Rng rng(context.seed ^ 0xb17f11b5ull);
    util::Confusion confusion;
    campaign::OutcomeCounts counts;
    for (std::uint64_t probe = 0; probe < probes; ++probe) {
      const std::uint64_t site = rng.next_below(golden.trace.size());
      const int bit_a = static_cast<int>(rng.next_below(fi::kBitsPerValue));
      int bit_b = static_cast<int>(rng.next_below(fi::kBitsPerValue - 1));
      if (bit_b >= bit_a) ++bit_b;  // distinct bits
      const fi::Injection injection =
          fi::Injection::double_bit_flip(site, bit_a, bit_b);

      const fi::ExperimentResult result =
          fi::run_injected(*kernel.program, golden, injection);
      switch (result.outcome) {
        case fi::Outcome::kMasked:
          ++counts.masked;
          break;
        case fi::Outcome::kSdc:
          ++counts.sdc;
          break;
        case fi::Outcome::kCrash:
          ++counts.crash;
          break;
        case fi::Outcome::kHang:  // in-process runs cannot hang-classify
          ++counts.hang;
          break;
        case fi::Outcome::kDetected:  // plain kernels carry no detector
          ++counts.detected;
          break;
      }

      // Boundary prediction from the corruption *magnitude*.
      const double corrupted = injection.apply(golden.trace[site]);
      if (!std::isfinite(corrupted)) continue;  // predicted crash: skip
      const double error = std::fabs(corrupted - golden.trace[site]);
      const bool predicted_masked =
          inference.boundary.predict_masked(site, error);
      const bool actually_masked = result.outcome == fi::Outcome::kMasked;
      if (predicted_masked && actually_masked) {
        ++confusion.true_positive;
      } else if (predicted_masked) {
        ++confusion.false_positive;
      } else if (actually_masked) {
        ++confusion.false_negative;
      } else {
        ++confusion.true_negative;
      }
    }

    table.add_row({name, util::percent(single_bit_sdc),
                   util::percent(counts.sdc_fraction()),
                   util::percent(static_cast<double>(counts.crash) /
                                 static_cast<double>(counts.total())),
                   util::percent(confusion.precision()),
                   util::percent(confusion.recall())});
  }

  bench::print_table(table, context, "single-bit boundary vs double-bit faults");
  return 0;
}
