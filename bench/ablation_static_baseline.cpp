// Baseline comparison: static, zero-injection SDC prediction vs the
// inferred fault tolerance boundary.
//
// The paper's Related Work contrasts its self-verifying dynamic method with
// static analyses (Shoestring, Trident) that predict vulnerability without
// running fault-injection experiments.  We implement the natural static
// baseline for our fault model: predict an experiment masked iff its
// injected error is at most g times the program's output tolerance, i.e.
// assume a uniform propagation gain g for every site.  Two variants:
//
//   * g = 1 (uncalibrated): what a user can do without any injections;
//   * best g by F1 (oracle): the gain chosen with full ground-truth
//     knowledge -- an upper bound no static method can exceed here.
//
// On our near-linear kernels the oracle-calibrated baseline is strong
// (gains really are close to uniform), but the right gain differs per
// kernel and selecting it needs the very campaign the baseline is supposed
// to avoid; the boundary needs no calibration and self-verifies (paper
// Section 6: "verifying how accurately [static analysis] detects fault
// injection sites is difficult ... our approach is self-verifying").
#include "common/bench_common.h"

#include <cmath>

#include "boundary/metrics.h"
#include "campaign/inference.h"
#include "fi/fpbits.h"
#include "util/stats.h"

namespace {

using namespace ftb;

util::Confusion static_confusion(const fi::GoldenRun& golden,
                                 const campaign::GroundTruth& truth,
                                 double gain) {
  util::Confusion confusion;
  const double threshold = gain * golden.tolerance;
  for (std::uint64_t site = 0; site < golden.trace.size(); ++site) {
    const double value = golden.trace[site];
    for (int bit = 0; bit < fi::kBitsPerValue; ++bit) {
      if (fi::flip_is_nonfinite(value, bit)) continue;  // predicted crash
      const bool predicted_masked =
          fi::bit_flip_error(value, bit) <= threshold;
      const bool actually_masked =
          truth.outcome(site, bit) == fi::Outcome::kMasked;
      if (predicted_masked && actually_masked) {
        ++confusion.true_positive;
      } else if (predicted_masked) {
        ++confusion.false_positive;
      } else if (actually_masked) {
        ++confusion.false_negative;
      } else {
        ++confusion.true_negative;
      }
    }
  }
  return confusion;
}

double f1(const util::Confusion& confusion) {
  const double p = confusion.precision();
  const double r = confusion.recall();
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchContext context = bench::BenchContext::from_cli(cli);
  bench::print_banner(
      "Baseline -- static uniform-gain prediction vs inferred boundary",
      "Static baseline: masked iff injected error <= g * output tolerance\n"
      "(no fault injection, oracle-best g per kernel) vs the 1% boundary.",
      context);

  util::ThreadPool& pool = util::default_pool();
  util::Table table({"Name", "static g=1 P/R/F1", "static best-g",
                     "static oracle P/R/F1", "boundary 1% P/R/F1"});

  for (const std::string& name : context.kernel_names) {
    const bench::PreparedKernel kernel =
        bench::prepare_kernel(name, context.preset);
    const campaign::GroundTruth truth =
        bench::ground_truth_for(kernel, context, pool);

    const util::Confusion uncalibrated =
        static_confusion(kernel.golden, truth, 1.0);

    // Oracle gain sweep for the baseline.
    double best_f1 = -1.0;
    double best_gain = 1.0;
    util::Confusion best_confusion;
    for (double gain = 1e-3; gain <= 1e9; gain *= 10.0) {
      const util::Confusion confusion =
          static_confusion(kernel.golden, truth, gain);
      if (f1(confusion) > best_f1) {
        best_f1 = f1(confusion);
        best_gain = gain;
        best_confusion = confusion;
      }
    }

    campaign::InferenceOptions options;
    options.sample_fraction = 0.01;
    options.filter = true;
    options.seed = context.seed;
    const campaign::InferenceResult inference =
        campaign::infer_uniform(*kernel.program, kernel.golden, options, pool);
    const auto metrics = boundary::evaluate_boundary(
        inference.boundary, kernel.golden.trace, truth.outcomes(),
        inference.sampled_ids);

    table.add_row(
        {name,
         util::format("%s / %s / %.3f",
                      util::percent(uncalibrated.precision()).c_str(),
                      util::percent(uncalibrated.recall()).c_str(),
                      f1(uncalibrated)),
         util::format("%.0e", best_gain),
         util::format("%s / %s / %.3f",
                      util::percent(best_confusion.precision()).c_str(),
                      util::percent(best_confusion.recall()).c_str(),
                      best_f1),
         util::format("%s / %s / %.3f",
                      util::percent(metrics.precision()).c_str(),
                      util::percent(metrics.recall()).c_str(),
                      f1(metrics.full))});
  }

  bench::print_table(table, context, "static baseline vs boundary");
  return 0;
}
