// Microbenchmarks for the compositional section-graph driver
// (sections/driver.h): what does an incremental recompute actually buy?
//
// Two arms per kernel, same configuration:
//   *FullCompose*       -- every section campaigned from scratch (the cost
//     of the monolithic habit: any change re-runs the whole plan);
//   *OneDirtyRecompute* -- a previous composed artifact is supplied and one
//     section's budget is touched, so fingerprint diffing reuses every
//     clean section's stored evidence and re-runs only the dirty one.
//
// Both arms journal into a fresh directory each iteration (journals resume
// otherwise, and a resumed campaign would measure file replay, not the
// recompute).  The per-iteration experiment counts are exported as
// counters; BENCH_compose.json records a representative run's speedups.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>

#include "fi/executor.h"
#include "kernels/registry.h"
#include "sections/compose.h"
#include "sections/driver.h"
#include "sections/section.h"
#include "util/thread_pool.h"

namespace {

using namespace ftb;
namespace fs = std::filesystem;

struct ComposeFixture {
  explicit ComposeFixture(const std::string& name)
      : kernel(name),
        program(kernels::make_program(name, kernels::Preset::kTiny)),
        golden(fi::run_golden(*program)),
        pool(2) {
    const sections::SectionPlan plan =
        sections::carve_sections(program->config_key(), golden, carve());
    victim = plan.sections.back().name;

    // The previous artifact the incremental arm diffs against: one full
    // compose at the base budgets, kept for the fixture's lifetime.
    sections::SectionCampaignOptions options = base_options();
    options.store_dir = scratch_dir("seed");
    previous = run_section_campaigns(*program, golden, nullptr, options)
                   .artifact;
  }

  static sections::CarveOptions carve() {
    sections::CarveOptions options;
    options.batch_per_section = 64;
    return options;
  }

  sections::SectionCampaignOptions base_options() const {
    sections::SectionCampaignOptions options;
    options.stem = kernel;
    options.kernel = kernel;
    options.preset = "tiny";
    options.carve = carve();
    options.pool = const_cast<util::ThreadPool*>(&pool);
    return options;
  }

  /// Fresh per-iteration journal directory; resumable journals would turn
  /// the second iteration into a no-op.
  std::string scratch_dir(const std::string& tag) {
    const fs::path dir = fs::temp_directory_path() / "ftb_micro_compose" /
                         (kernel + "_" + tag + "_" + std::to_string(next++));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
  }

  std::string kernel;
  fi::ProgramPtr program;
  fi::GoldenRun golden;
  util::ThreadPool pool;
  std::string victim;
  sections::ComposedArtifact previous;
  std::uint64_t next = 0;
};

ComposeFixture& fixture_for(const std::string& name) {
  static ComposeFixture cg("cg");
  static ComposeFixture lu("lu");
  static ComposeFixture fft("fft");
  if (name == "lu") return lu;
  if (name == "fft") return fft;
  return cg;
}

void run_full_compose(benchmark::State& state, const std::string& kernel) {
  ComposeFixture& f = fixture_for(kernel);
  std::uint64_t executed = 0;
  for (auto _ : state) {
    sections::SectionCampaignOptions options = f.base_options();
    options.store_dir = f.scratch_dir("full");
    const sections::SectionCampaignResult result =
        run_section_campaigns(*f.program, f.golden, nullptr, options);
    executed += result.executed;
    benchmark::DoNotOptimize(result.artifact.sections.size());
  }
  state.counters["experiments"] = benchmark::Counter(
      static_cast<double>(executed), benchmark::Counter::kAvgIterations);
}

void run_one_dirty(benchmark::State& state, const std::string& kernel) {
  ComposeFixture& f = fixture_for(kernel);
  std::uint64_t executed = 0;
  for (auto _ : state) {
    sections::SectionCampaignOptions options = f.base_options();
    options.store_dir = f.scratch_dir("dirty");
    // Touch one section's budget: its fingerprint changes, every other
    // section splices from the previous artifact.
    options.carve.batch_overrides = f.victim + "=96";
    const sections::SectionCampaignResult result =
        run_section_campaigns(*f.program, f.golden, &f.previous, options);
    executed += result.executed;
    benchmark::DoNotOptimize(result.dirty.size());
  }
  state.counters["experiments"] = benchmark::Counter(
      static_cast<double>(executed), benchmark::Counter::kAvgIterations);
}

void BM_CgFullCompose(benchmark::State& state) {
  run_full_compose(state, "cg");
}
BENCHMARK(BM_CgFullCompose)->Unit(benchmark::kMillisecond);

void BM_CgOneDirtyRecompute(benchmark::State& state) {
  run_one_dirty(state, "cg");
}
BENCHMARK(BM_CgOneDirtyRecompute)->Unit(benchmark::kMillisecond);

void BM_LuFullCompose(benchmark::State& state) {
  run_full_compose(state, "lu");
}
BENCHMARK(BM_LuFullCompose)->Unit(benchmark::kMillisecond);

void BM_LuOneDirtyRecompute(benchmark::State& state) {
  run_one_dirty(state, "lu");
}
BENCHMARK(BM_LuOneDirtyRecompute)->Unit(benchmark::kMillisecond);

void BM_FftFullCompose(benchmark::State& state) {
  run_full_compose(state, "fft");
}
BENCHMARK(BM_FftFullCompose)->Unit(benchmark::kMillisecond);

void BM_FftOneDirtyRecompute(benchmark::State& state) {
  run_one_dirty(state, "fft");
}
BENCHMARK(BM_FftOneDirtyRecompute)->Unit(benchmark::kMillisecond);

}  // namespace
