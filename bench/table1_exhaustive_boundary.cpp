// Regenerates paper Table 1: for each benchmark, the known true (golden)
// SDC ratio from an exhaustive fault-injection campaign against the SDC
// ratio approximated by the fault tolerance boundary constructed from that
// same exhaustive campaign (Section 4.1), plus the sample-space size.
//
// Expected shape (paper): Approx_SDC is very close to Golden_SDC for every
// benchmark, never below it (non-monotonic sites only cause overestimation).
#include "common/bench_common.h"

#include "boundary/exhaustive.h"
#include "boundary/metrics.h"
#include "boundary/predictor.h"

int main(int argc, char** argv) {
  using namespace ftb;
  const util::Cli cli(argc, argv);
  const bench::BenchContext context = bench::BenchContext::from_cli(cli);
  bench::print_banner(
      "Table 1 -- exhaustive-campaign fault tolerance boundary",
      "Golden SDC ratio vs SDC ratio approximated from the boundary built\n"
      "by the exhaustive campaign; Size is the (site, bit) sample space.",
      context);

  util::ThreadPool& pool = util::default_pool();
  util::Table table({"Name", "Golden_SDC", "Approx_SDC", "Size",
                     "DynInstrs", "Crash", "NonMonotonicSites"});

  for (const std::string& name : context.kernel_names) {
    const bench::PreparedKernel kernel =
        bench::prepare_kernel(name, context.preset);
    const campaign::GroundTruth truth =
        bench::ground_truth_for(kernel, context, pool);

    const boundary::FaultToleranceBoundary exhaustive =
        boundary::exhaustive_boundary(truth.outcomes(), kernel.golden.trace);
    const double approx =
        boundary::predicted_overall_sdc(exhaustive, kernel.golden.trace);
    const boundary::MonotonicityReport monotonicity =
        boundary::analyze_monotonicity(truth.outcomes(), kernel.golden.trace);
    const campaign::OutcomeCounts counts = truth.counts();

    table.add_row({name, util::percent(truth.overall_sdc_ratio()),
                   util::percent(approx),
                   util::format("%llu", static_cast<unsigned long long>(
                                            truth.experiments())),
                   util::format("%llu", static_cast<unsigned long long>(
                                            truth.sites())),
                   util::percent(static_cast<double>(counts.crash) /
                                 static_cast<double>(counts.total())),
                   util::percent(monotonicity.fraction())});
  }

  bench::print_table(table, context, "Table 1");
  return 0;
}
