// Microbenchmarks for boundary construction and prediction throughput.
#include <benchmark/benchmark.h>

#include <vector>

#include "boundary/accumulator.h"
#include "boundary/exhaustive.h"
#include "boundary/predictor.h"
#include "fi/fpbits.h"
#include "util/rng.h"

namespace {

using namespace ftb;

constexpr std::size_t kSites = 8192;

std::vector<double> random_trace(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> trace(kSites);
  for (double& v : trace) v = rng.next_double(-10.0, 10.0);
  return trace;
}

std::vector<double> random_diffs(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> diffs(kSites, 0.0);
  for (std::size_t i = kSites / 4; i < kSites; ++i) {
    diffs[i] = rng.next_double(0.0, 1e-3);
  }
  return diffs;
}

void BM_AccumulateMaskedPropagation(benchmark::State& state) {
  const bool filter = state.range(0) != 0;
  const std::vector<double> diffs = random_diffs(1);
  boundary::BoundaryAccumulator accumulator(kSites, {filter, 32});
  for (auto _ : state) {
    accumulator.record_masked_propagation(diffs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSites);
}
BENCHMARK(BM_AccumulateMaskedPropagation)->Arg(0)->Arg(1);

void BM_FinalizeBoundary(benchmark::State& state) {
  boundary::BoundaryAccumulator accumulator(kSites, {true, 32});
  util::Rng rng(3);
  for (int batch = 0; batch < 16; ++batch) {
    accumulator.record_masked_propagation(random_diffs(batch));
  }
  for (std::size_t site = 0; site < kSites; site += 3) {
    accumulator.record_injection(site, static_cast<int>(site % 64),
                                 fi::Outcome::kSdc, rng.next_double());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(accumulator.finalize());
  }
}
BENCHMARK(BM_FinalizeBoundary);

void BM_PredictSite(benchmark::State& state) {
  const std::vector<double> trace = random_trace(5);
  const boundary::FaultToleranceBoundary boundary(
      std::vector<double>(kSites, 1e-4));
  std::size_t site = 0;
  for (auto _ : state) {
    site = (site + 1) % kSites;
    benchmark::DoNotOptimize(
        boundary::predict_site(boundary, site, trace[site]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_PredictSite);

void BM_PredictedProfile(benchmark::State& state) {
  const std::vector<double> trace = random_trace(7);
  const boundary::FaultToleranceBoundary boundary(
      std::vector<double>(kSites, 1e-4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        boundary::predicted_sdc_profile(boundary, trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSites * 64);
}
BENCHMARK(BM_PredictedProfile);

void BM_ExhaustiveBoundaryBuild(benchmark::State& state) {
  const std::vector<double> trace = random_trace(9);
  util::Rng rng(11);
  std::vector<fi::Outcome> outcomes(kSites * fi::kBitsPerValue);
  for (fi::Outcome& o : outcomes) {
    const double u = rng.next_double();
    o = u < 0.6 ? fi::Outcome::kMasked
                : (u < 0.95 ? fi::Outcome::kSdc : fi::Outcome::kCrash);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(boundary::exhaustive_boundary(outcomes, trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(outcomes.size()));
}
BENCHMARK(BM_ExhaustiveBoundaryBuild);

}  // namespace
