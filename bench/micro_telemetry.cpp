// Microbenchmarks for the telemetry layer (telemetry/{registry,events}.h).
//
// Two questions matter:
//  1. What do the primitives cost in isolation?  Counter::add and
//     LatencyHistogram::record are single relaxed atomics and must stay in
//     the couple-of-nanoseconds range; SpanScope against a null sink must
//     collapse to a pointer test.
//  2. What does instrumentation cost a real campaign?  The acceptance bar
//     is <= 2% end-to-end overhead on the CG kernel with telemetry off
//     (null sink) -- and staying cheap even with the sink enabled, since
//     the hot path (one experiment) is far heavier than a counter bump.
#include <benchmark/benchmark.h>

#include <vector>

#include "campaign/campaign.h"
#include "campaign/inference.h"
#include "campaign/sample_space.h"
#include "fi/executor.h"
#include "kernels/registry.h"
#include "telemetry/events.h"
#include "telemetry/export.h"
#include "util/thread_pool.h"

namespace {

using namespace ftb;

// ---------------------------------------------------------------------------
// Primitive costs
// ---------------------------------------------------------------------------

void BM_CounterAdd(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  telemetry::Counter& counter = registry.counter("bench.counter");
  for (auto _ : state) {
    counter.add();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  telemetry::LatencyHistogram& hist = registry.histogram("bench.hist");
  std::uint64_t value = 1;
  for (auto _ : state) {
    hist.record(value);
    value = value * 2862933555777941757ULL + 3037000493ULL;  // cheap lcg
  }
  benchmark::DoNotOptimize(hist.count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramRecord);

void BM_SpanScopeNullSink(benchmark::State& state) {
  // The off-by-default path every instrumented call site pays: must be a
  // pointer test and nothing else.
  for (auto _ : state) {
    telemetry::SpanScope span(nullptr, "bench.span", "bench");
    span.arg("k", 1.0);
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpanScopeNullSink);

void BM_SpanScopeDisabledSink(benchmark::State& state) {
  // Non-null but disabled sink: same promise as the null sink.
  telemetry::Telemetry sink;
  for (auto _ : state) {
    telemetry::SpanScope span(&sink, "bench.span", "bench");
    span.arg("k", 1.0);
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpanScopeDisabledSink);

void BM_SpanScopeEnabledSink(benchmark::State& state) {
  // The paid path: two clock reads, string moves, one mutex push.
  telemetry::Telemetry sink;
  sink.set_enabled(true);
  for (auto _ : state) {
    telemetry::SpanScope span(&sink, "bench.span", "bench");
    span.arg("k", 1.0);
  }
  benchmark::DoNotOptimize(sink.events().size());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpanScopeEnabledSink);

// ---------------------------------------------------------------------------
// End-to-end campaign overhead on CG
// ---------------------------------------------------------------------------

struct CgFixture {
  CgFixture()
      : program(kernels::make_program("cg", kernels::Preset::kTiny)),
        golden(fi::run_golden(*program)) {
    const std::uint64_t space = golden.sample_space_size();
    for (std::uint64_t i = 0; i < kExperiments; ++i) {
      ids.push_back((i * 9973) % space);
    }
  }
  static constexpr std::uint64_t kExperiments = 256;
  fi::ProgramPtr program;
  fi::GoldenRun golden;
  std::vector<campaign::ExperimentId> ids;
};

CgFixture& fixture() {
  static CgFixture f;
  return f;
}

void run_campaign(telemetry::Telemetry* sink) {
  CgFixture& f = fixture();
  static util::ThreadPool pool(2);
  boundary::BoundaryAccumulator accumulator(f.golden.trace.size(), {true, 32});
  std::vector<double> information(f.golden.trace.size(), 0.0);
  benchmark::DoNotOptimize(campaign::run_and_accumulate(
      *f.program, f.golden, f.ids, pool, accumulator, information, 1e-8,
      sink));
}

void BM_CgCampaignTelemetryOff(benchmark::State& state) {
  // Baseline: the default null sink -- the acceptance comparison point.
  for (auto _ : state) {
    run_campaign(nullptr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(CgFixture::kExperiments));
}
BENCHMARK(BM_CgCampaignTelemetryOff)->Unit(benchmark::kMillisecond);

void BM_CgCampaignTelemetryDisabledSink(benchmark::State& state) {
  // A wired but disabled sink: what a binary that links telemetry but never
  // passes --metrics-out pays.  Must be indistinguishable from Off.
  telemetry::Telemetry sink;
  for (auto _ : state) {
    run_campaign(&sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(CgFixture::kExperiments));
}
BENCHMARK(BM_CgCampaignTelemetryDisabledSink)->Unit(benchmark::kMillisecond);

void BM_CgCampaignTelemetryEnabled(benchmark::State& state) {
  // Full instrumentation live: spans, counters, histograms, gauges.
  telemetry::Telemetry sink;
  sink.set_enabled(true);
  for (auto _ : state) {
    run_campaign(&sink);
  }
  benchmark::DoNotOptimize(sink.events().size());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(CgFixture::kExperiments));
}
BENCHMARK(BM_CgCampaignTelemetryEnabled)->Unit(benchmark::kMillisecond);

}  // namespace
