// Microbenchmarks for the tracer hot path: the per-dynamic-instruction cost
// of each tracer mode, which bounds how fast campaigns can run (every
// experiment replays the whole kernel through Tracer::step).
#include <benchmark/benchmark.h>

#include <vector>

#include "fi/executor.h"
#include "fi/tracer.h"
#include "kernels/registry.h"

namespace {

using namespace ftb;

constexpr std::size_t kSteps = 4096;

double drive(fi::Tracer& tracer) {
  double accumulator = 1.000001;
  for (std::size_t i = 0; i < kSteps; ++i) {
    accumulator = tracer.step(accumulator * 1.0000003 + 1e-9);
  }
  return accumulator;
}

void BM_TracerCount(benchmark::State& state) {
  for (auto _ : state) {
    fi::Tracer tracer = fi::Tracer::counter();
    benchmark::DoNotOptimize(drive(tracer));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSteps);
}
BENCHMARK(BM_TracerCount);

void BM_TracerRecord(benchmark::State& state) {
  std::vector<double> trace;
  trace.reserve(kSteps);
  for (auto _ : state) {
    trace.clear();
    fi::Tracer tracer = fi::Tracer::recorder(trace);
    benchmark::DoNotOptimize(drive(tracer));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSteps);
}
BENCHMARK(BM_TracerRecord);

void BM_TracerInject(benchmark::State& state) {
  for (auto _ : state) {
    fi::Tracer tracer =
        fi::Tracer::injector(fi::Injection::bit_flip(kSteps / 2, 3));
    benchmark::DoNotOptimize(drive(tracer));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSteps);
}
BENCHMARK(BM_TracerInject);

void BM_TracerCompare(benchmark::State& state) {
  std::vector<double> golden;
  golden.reserve(kSteps);
  {
    fi::Tracer recorder = fi::Tracer::recorder(golden);
    drive(recorder);
  }
  std::vector<double> diffs(golden.size());
  for (auto _ : state) {
    std::fill(diffs.begin(), diffs.end(), 0.0);
    fi::Tracer tracer = fi::Tracer::comparator(
        fi::Injection::bit_flip(kSteps / 2, 3), golden, diffs);
    benchmark::DoNotOptimize(drive(tracer));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSteps);
}
BENCHMARK(BM_TracerCompare);

// End-to-end cost of one fault-injection experiment per kernel.
void BM_ExperimentCg(benchmark::State& state) {
  const fi::ProgramPtr program =
      kernels::make_program("cg", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  std::uint64_t site = 0;
  for (auto _ : state) {
    site = (site + 97) % golden.trace.size();
    benchmark::DoNotOptimize(fi::run_injected(
        *program, golden, fi::Injection::bit_flip(site, 30)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(golden.trace.size()));
}
BENCHMARK(BM_ExperimentCg);

void BM_ExperimentCgWithCompare(benchmark::State& state) {
  const fi::ProgramPtr program =
      kernels::make_program("cg", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  std::vector<double> diffs(golden.trace.size());
  std::uint64_t site = 0;
  for (auto _ : state) {
    site = (site + 97) % golden.trace.size();
    benchmark::DoNotOptimize(fi::run_injected_compare(
        *program, golden, fi::Injection::bit_flip(site, 30), diffs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(golden.trace.size()));
}
BENCHMARK(BM_ExperimentCgWithCompare);

}  // namespace
