// Ablation beyond the paper: which ingredients of the Section 3.4 adaptive
// sampler matter?  At an equal experiment budget we compare
//
//   uniform       -- one-shot uniform sampling (the Section 4.2 default),
//   bias-only     -- progressive rounds with the 1/S_i bias but WITHOUT
//                    pruning boundary-predicted-masked experiments,
//   prune-only    -- progressive rounds with pruning but uniform rounds,
//   full adaptive -- bias + pruning (the paper's method).
//
// Reported per kernel: recall, precision, and |predicted - golden| SDC gap.
// This isolates the DESIGN.md question of where adaptive's coverage wins
// come from (mostly pruning, with bias helping information-starved sites).
#include "common/bench_common.h"

#include <cmath>
#include <cstdio>

#include "boundary/metrics.h"
#include "boundary/predictor.h"
#include "campaign/adaptive.h"
#include "campaign/inference.h"
#include "campaign/sampler.h"
#include "util/stats.h"

namespace {

using namespace ftb;

struct Variant {
  const char* name;
  bool bias;
  bool prune;
};

struct VariantOutcome {
  double recall = 0.0;
  double precision = 0.0;
  double sdc_gap = 0.0;
  double fraction = 0.0;
};

/// A stripped-down progressive loop with the bias and pruning toggles.
VariantOutcome run_variant(const fi::Program& program,
                           const fi::GoldenRun& golden,
                           const campaign::GroundTruth& truth,
                           util::ThreadPool& pool, bool bias, bool prune,
                           std::uint64_t budget, std::uint64_t seed) {
  const std::uint64_t space = golden.sample_space_size();
  const std::uint64_t round_size = std::max<std::uint64_t>(32, space / 1000);

  boundary::BoundaryAccumulator accumulator(golden.trace.size(),
                                            {true, 32});
  std::vector<double> information(golden.trace.size(), 0.0);
  std::vector<campaign::ExperimentId> candidates(space);
  for (std::uint64_t id = 0; id < space; ++id) candidates[id] = id;
  std::vector<campaign::ExperimentId> sampled;
  util::Rng rng(seed);

  while (sampled.size() < budget && !candidates.empty()) {
    const std::uint64_t want =
        std::min<std::uint64_t>(round_size, budget - sampled.size());
    std::vector<campaign::ExperimentId> picked;
    if (bias) {
      picked = campaign::sample_biased(rng, candidates, information, want);
    } else {
      // Uniform over the candidate pool.
      const std::vector<std::uint64_t> positions =
          util::sample_without_replacement(
              rng, candidates.size(),
              std::min<std::uint64_t>(want, candidates.size()));
      picked.reserve(positions.size());
      for (std::uint64_t pos : positions) picked.push_back(candidates[pos]);
    }
    (void)campaign::run_and_accumulate(program, golden, picked, pool,
                                       accumulator, information, 1e-8);
    sampled.insert(sampled.end(), picked.begin(), picked.end());

    const boundary::FaultToleranceBoundary current = accumulator.finalize();
    std::vector<campaign::ExperimentId> next_pool;
    next_pool.reserve(candidates.size());
    std::sort(picked.begin(), picked.end());
    for (const campaign::ExperimentId id : candidates) {
      if (std::binary_search(picked.begin(), picked.end(), id)) continue;
      if (prune) {
        const std::uint64_t site = campaign::site_of(id);
        if (boundary::predict_flip(current, site, golden.trace[site],
                                   campaign::bit_of(id)) ==
            fi::Outcome::kMasked) {
          continue;
        }
      }
      next_pool.push_back(id);
    }
    candidates.swap(next_pool);
  }

  const boundary::FaultToleranceBoundary final_boundary =
      accumulator.finalize();
  const auto metrics = boundary::evaluate_boundary(
      final_boundary, golden.trace, truth.outcomes(), sampled);
  VariantOutcome outcome;
  outcome.recall = metrics.recall();
  outcome.precision = metrics.precision();
  outcome.sdc_gap = std::fabs(
      boundary::predicted_overall_sdc(final_boundary, golden.trace) -
      truth.overall_sdc_ratio());
  outcome.fraction =
      static_cast<double>(sampled.size()) / static_cast<double>(space);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchContext context = bench::BenchContext::from_cli(cli);
  bench::print_banner(
      "Ablation -- adaptive sampling ingredients at equal budget",
      "uniform vs bias-only vs prune-only vs full adaptive, same number of\n"
      "experiments each; isolates where the coverage wins come from.",
      context);

  const Variant variants[] = {
      {"uniform", false, false},
      {"bias-only", true, false},
      {"prune-only", false, true},
      {"bias+prune", true, true},
  };

  util::ThreadPool& pool = util::default_pool();

  for (const std::string& name : context.kernel_names) {
    const bench::PreparedKernel kernel =
        bench::prepare_kernel(name, context.preset);
    const campaign::GroundTruth truth =
        bench::ground_truth_for(kernel, context, pool);
    const std::uint64_t budget = kernel.golden.sample_space_size() / 50;  // 2%

    std::printf("--- %s (budget = %llu experiments, 2%% of space) ---\n",
                name.c_str(), static_cast<unsigned long long>(budget));
    util::Table table({"variant", "recall", "precision", "|pred-golden| SDC"});
    for (const Variant& variant : variants) {
      util::RunningStats recall, precision, gap;
      for (std::size_t trial = 0; trial < context.trials; ++trial) {
        const VariantOutcome outcome = run_variant(
            *kernel.program, kernel.golden, truth, pool, variant.bias,
            variant.prune, budget, context.seed + trial);
        recall.add(outcome.recall);
        precision.add(outcome.precision);
        gap.add(outcome.sdc_gap);
      }
      table.add_row({variant.name, util::percent(recall.mean()),
                     util::percent(precision.mean()),
                     util::percent(gap.mean())});
    }
    bench::print_table(table, context, "");
  }
  return 0;
}
