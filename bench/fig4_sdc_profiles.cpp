// Regenerates paper Figure 4 (all three rows) for each benchmark:
//
//   row 1: known true per-site SDC ratio vs the ratio predicted from a
//          boundary inferred with 1% uniform sampling,
//   row 2: each site group's "potential impact" -- how often it received a
//          significant injection or significant propagated corruption
//          (relative error > 1e-8) during that same 1% campaign,
//   row 3: the predicted ratio after progressive adaptive sampling
//          (Section 3.4), which spends extra samples exactly where row 2 is
//          low.
//
// Expected shape (paper): row-1 prediction matches the truth where row 2 is
// high and overestimates where it is low (init phases, early FFT
// transposes, LU block starts); row 3 tightens those regions.
#include "common/bench_common.h"

#include <cstdio>

#include "boundary/metrics.h"
#include "boundary/predictor.h"
#include "campaign/adaptive.h"
#include "campaign/inference.h"
#include "util/ascii_plot.h"
#include "util/svg_plot.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace ftb;
  const util::Cli cli(argc, argv);
  const bench::BenchContext context = bench::BenchContext::from_cli(cli);
  const double fraction = cli.get_double("fraction", 0.01);
  const auto group = static_cast<std::size_t>(cli.get_int("group", 0));
  const std::string svg_dir = cli.get("svg");
  bench::print_banner(
      "Figure 4 -- per-instruction SDC profiles",
      "row 1: true vs predicted SDC ratio at 1% uniform sampling;\n"
      "row 2: potential impact (significant injections + propagations);\n"
      "row 3: prediction after progressive adaptive sampling.",
      context);

  util::ThreadPool& pool = util::default_pool();

  for (const std::string& name : context.kernel_names) {
    const bench::PreparedKernel kernel =
        bench::prepare_kernel(name, context.preset);
    const campaign::GroundTruth truth =
        bench::ground_truth_for(kernel, context, pool);
    // The paper groups 8 consecutive instructions for CG, 147 for LU, 208
    // for FFT; we scale the group so each profile renders ~120 dots.
    const std::size_t group_size =
        group ? group
              : std::max<std::size_t>(1, kernel.golden.trace.size() / 120);

    // Row 1 inputs: uniform 1% inference.
    campaign::InferenceOptions options;
    options.sample_fraction = fraction;
    options.seed = context.seed;
    options.filter = true;
    const campaign::InferenceResult uniform =
        campaign::infer_uniform(*kernel.program, kernel.golden, options, pool);

    const std::vector<double> truth_profile =
        util::group_means(truth.sdc_profile(), group_size);
    const std::vector<double> predicted_profile = util::group_means(
        boundary::predicted_sdc_profile(uniform.boundary, kernel.golden.trace),
        group_size);

    // Row 2: potential impact = grouped information counts.
    const std::vector<double> impact =
        util::group_means(uniform.information, group_size);

    // Row 3: adaptive sampling.
    campaign::AdaptiveOptions adaptive_options;
    adaptive_options.seed = context.seed;
    const campaign::AdaptiveResult adaptive = campaign::infer_adaptive(
        *kernel.program, kernel.golden, adaptive_options, pool);
    const std::vector<double> adaptive_profile = util::group_means(
        boundary::predicted_sdc_profile(adaptive.boundary,
                                        kernel.golden.trace),
        group_size);

    std::printf("--- %s (sites=%zu, group=%zu, uniform samples=%zu [%.2f%%],"
                " adaptive samples=%zu [%.2f%%]) ---\n",
                name.c_str(), kernel.golden.trace.size(), group_size,
                uniform.sampled_ids.size(), 100.0 * fraction,
                adaptive.sampled_ids.size(),
                100.0 * adaptive.sample_fraction());

    util::PlotOptions plot_options;
    plot_options.fix_y_range = true;
    plot_options.y_min = 0.0;
    plot_options.y_max = 1.0;
    plot_options.x_label = "dynamic instruction group";

    const util::Series row1[] = {
        {"true SDC ratio", truth_profile, 'o'},
        {"predicted (1% uniform)", predicted_profile, '*'},
    };
    std::printf("[row 1] true vs predicted SDC ratio\n%s",
                util::plot(row1, plot_options).c_str());

    const util::Series row2[] = {{"potential impact", impact, '#'}};
    std::printf("[row 2] potential impact (injections + propagations)\n%s",
                util::plot(row2, {}).c_str());

    const util::Series row3[] = {
        {"true SDC ratio", truth_profile, 'o'},
        {"predicted (adaptive)", adaptive_profile, '*'},
    };
    std::printf("[row 3] true vs predicted SDC ratio, adaptive sampling\n%s",
                util::plot(row3, plot_options).c_str());

    std::printf(
        "correlation with truth: uniform=%.3f adaptive=%.3f ; "
        "MAE: uniform=%.4f adaptive=%.4f\n\n",
        util::pearson_correlation(predicted_profile, truth_profile),
        util::pearson_correlation(adaptive_profile, truth_profile),
        util::mean_absolute_error(predicted_profile, truth_profile),
        util::mean_absolute_error(adaptive_profile, truth_profile));

    if (!svg_dir.empty()) {
      util::SvgOptions svg_options;
      svg_options.y_from_zero = true;
      svg_options.x_label = "dynamic instruction group";
      svg_options.y_label = "SDC ratio";
      svg_options.scatter = true;
      svg_options.title = name + ": true vs predicted (1% uniform)";
      const util::Series row1_svg[] = {
          {"true SDC ratio", truth_profile, 'o'},
          {"predicted (1% uniform)", predicted_profile, '*'},
      };
      util::write_svg_file(svg_dir + "/fig4_" + name + "_row1.svg",
                           util::svg_chart(row1_svg, svg_options));
      svg_options.title = name + ": potential impact";
      svg_options.y_label = "information count";
      svg_options.scatter = false;
      const util::Series row2_svg[] = {{"potential impact", impact, '#'}};
      util::write_svg_file(svg_dir + "/fig4_" + name + "_row2.svg",
                           util::svg_chart(row2_svg, svg_options));
      svg_options.title = name + ": true vs predicted (adaptive)";
      svg_options.y_label = "SDC ratio";
      svg_options.scatter = true;
      const util::Series row3_svg[] = {
          {"true SDC ratio", truth_profile, 'o'},
          {"predicted (adaptive)", adaptive_profile, '*'},
      };
      util::write_svg_file(svg_dir + "/fig4_" + name + "_row3.svg",
                           util::svg_chart(row3_svg, svg_options));
      std::printf("SVGs written to %s/fig4_%s_row{1,2,3}.svg\n",
                  svg_dir.c_str(), name.c_str());
    }

    if (context.emit_csv) {
      util::Table csv({"group", "true_sdc", "predicted_uniform",
                       "potential_impact", "predicted_adaptive"});
      for (std::size_t g = 0; g < truth_profile.size(); ++g) {
        csv.add_row({util::format("%zu", g),
                     util::format("%.6f", truth_profile[g]),
                     util::format("%.6f", predicted_profile[g]),
                     util::format("%.3f", impact[g]),
                     util::format("%.6f", adaptive_profile[g])});
      }
      std::fputs(csv.to_csv().c_str(), stdout);
      std::fputs("\n", stdout);
    }
    std::fflush(stdout);
  }
  return 0;
}
