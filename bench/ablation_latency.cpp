// Analysis beyond the paper: detection and spread latency.
//
// The boundary says which faults are dangerous; this bench asks *when* they
// become visible -- the quantity that sizes checkpoint intervals and
// detector placement (Hiller et al., the paper's ref [14]):
//
//   * crash latency: dynamic instructions between injection and the first
//     non-finite value, for Crash outcomes;
//   * spread-90: for SDC outcomes, instructions until 90% of the sites the
//     corruption will ever significantly touch have been touched;
//   * touched fraction: how much of the remaining execution an SDC
//     corruption reaches (the per-kernel "fan-out" of an error).
#include "common/bench_common.h"

#include "campaign/latency.h"
#include "campaign/sampler.h"
#include "util/rng.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace ftb;
  const util::Cli cli(argc, argv);
  const bench::BenchContext context = bench::BenchContext::from_cli(cli);
  const auto samples = static_cast<std::uint64_t>(cli.get_int("samples", 3000));
  bench::print_banner(
      "Analysis -- crash and spread latency",
      "How long a fault stays invisible: trap latency for crashes, spread\n"
      "speed and fan-out for SDC corruptions (per-kernel).",
      context);

  util::ThreadPool& pool = util::default_pool();
  util::Table table({"Name", "crashes", "crash latency (mean/max)", "sdcs",
                     "spread-90 (mean)", "touched fraction (mean)"});

  for (const std::string& name : context.kernel_names) {
    const bench::PreparedKernel kernel =
        bench::prepare_kernel(name, context.preset);
    util::Rng rng(context.seed);
    const std::vector<campaign::ExperimentId> ids = campaign::sample_uniform(
        rng, kernel.golden.sample_space_size(), samples);
    const campaign::LatencyReport report =
        campaign::measure_latency(*kernel.program, kernel.golden, ids, pool);

    table.add_row(
        {name,
         util::format("%llu", static_cast<unsigned long long>(report.crashes)),
         report.crashes
             ? util::format("%.0f / %.0f instrs", report.crash_latency.mean(),
                            report.crash_latency.max())
             : std::string("-"),
         util::format("%llu", static_cast<unsigned long long>(report.sdcs)),
         report.sdcs ? util::format("%.0f instrs",
                                    report.sdc_spread90.mean())
                     : std::string("-"),
         report.sdcs ? util::percent(report.sdc_touched_fraction.mean())
                     : std::string("-")});
  }

  bench::print_table(table, context, "fault visibility latency");
  return 0;
}
