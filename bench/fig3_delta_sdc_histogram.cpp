// Regenerates paper Figure 3: per-benchmark histograms of
// DeltaSDC = Golden_SDC(site) - Approx_SDC(site), where Approx comes from
// the boundary built by the exhaustive campaign (Section 4.1).
//
// Expected shape (paper): a dominant spike at 0 (the boundary predicts most
// sites exactly), with a small negative tail -- sites whose SDC ratio the
// boundary *over*estimates because of non-monotonic behaviour.  The paper
// reports the FFT histogram as a pure spike and ~9-11% slightly
// overestimated sites for CG/LU.
#include "common/bench_common.h"

#include <cstdio>

#include "boundary/exhaustive.h"
#include "boundary/metrics.h"
#include "boundary/predictor.h"
#include "util/histogram.h"
#include "util/svg_plot.h"

int main(int argc, char** argv) {
  using namespace ftb;
  const util::Cli cli(argc, argv);
  const bench::BenchContext context = bench::BenchContext::from_cli(cli);
  bench::print_banner(
      "Figure 3 -- DeltaSDC histograms (exhaustive boundary)",
      "DeltaSDC = Golden_SDC - Approx_SDC per dynamic instruction; mass at 0\n"
      "means the boundary predicts that site exactly, negative tail =\n"
      "overestimation at non-monotonic sites.",
      context);

  const std::string svg_dir = cli.get("svg");
  util::ThreadPool& pool = util::default_pool();

  for (const std::string& name : context.kernel_names) {
    const bench::PreparedKernel kernel =
        bench::prepare_kernel(name, context.preset);
    const campaign::GroundTruth truth =
        bench::ground_truth_for(kernel, context, pool);

    const boundary::FaultToleranceBoundary exhaustive =
        boundary::exhaustive_boundary(truth.outcomes(), kernel.golden.trace);
    const std::vector<double> golden_profile = truth.sdc_profile();
    const std::vector<double> predicted_profile =
        boundary::predicted_sdc_profile(exhaustive, kernel.golden.trace);
    const std::vector<double> delta =
        boundary::delta_sdc_profile(golden_profile, predicted_profile);

    util::Histogram histogram(-0.20, 0.20, 41);  // centred bin straddles 0
    histogram.add_all(delta);

    std::size_t exact = 0, overestimated = 0, underestimated = 0;
    for (double d : delta) {
      if (d == 0.0) {
        ++exact;
      } else if (d < 0.0) {
        ++overestimated;  // predicted more SDC than reality
      } else {
        ++underestimated;
      }
    }

    const boundary::MonotonicityReport monotonicity =
        boundary::analyze_monotonicity(truth.outcomes(), kernel.golden.trace);

    std::printf("--- %s ---\n", name.c_str());
    std::printf(
        "sites=%zu  exact=%.2f%%  overestimated=%.2f%%  underestimated=%.2f%%"
        "  non-monotonic sites=%.2f%%\n",
        delta.size(), 100.0 * static_cast<double>(exact) / delta.size(),
        100.0 * static_cast<double>(overestimated) / delta.size(),
        100.0 * static_cast<double>(underestimated) / delta.size(),
        100.0 * monotonicity.fraction());
    std::fputs(histogram.render(56).c_str(), stdout);
    std::fputs("\n", stdout);

    if (!svg_dir.empty()) {
      util::SvgOptions svg_options;
      svg_options.title = name + ": DeltaSDC histogram";
      svg_options.x_label = "Golden_SDC - Approx_SDC";
      svg_options.y_label = "fault injection sites";
      util::write_svg_file(svg_dir + "/fig3_" + name + ".svg",
                           util::svg_histogram(histogram, svg_options));
      std::printf("SVG written to %s/fig3_%s.svg\n", svg_dir.c_str(),
                  name.c_str());
    }

    if (context.emit_csv) {
      util::Table csv({"bin_center", "count"});
      for (std::size_t b = 0; b < histogram.bin_count(); ++b) {
        csv.add_row({util::format("%+.4f", histogram.bin_center(b)),
                     util::format("%llu", static_cast<unsigned long long>(
                                              histogram.count(b)))});
      }
      std::fputs(csv.to_csv().c_str(), stdout);
      std::fputs("\n", stdout);
    }
    std::fflush(stdout);
  }
  return 0;
}
