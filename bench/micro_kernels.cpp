// Microbenchmarks for the instrumented kernels: golden-run cost per kernel
// and preset (the unit every campaign multiplies by its experiment count).
#include <benchmark/benchmark.h>

#include "fi/executor.h"
#include "kernels/registry.h"

namespace {

using namespace ftb;

void run_golden_benchmark(benchmark::State& state, const std::string& name,
                          kernels::Preset preset) {
  const fi::ProgramPtr program = kernels::make_program(name, preset);
  const std::uint64_t dyn = fi::count_dynamic_instructions(*program);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fi::run_golden(*program));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dyn));
  state.counters["dyn_instrs"] = static_cast<double>(dyn);
}

void BM_GoldenCgDefault(benchmark::State& state) {
  run_golden_benchmark(state, "cg", kernels::Preset::kDefault);
}
void BM_GoldenLuDefault(benchmark::State& state) {
  run_golden_benchmark(state, "lu", kernels::Preset::kDefault);
}
void BM_GoldenFftDefault(benchmark::State& state) {
  run_golden_benchmark(state, "fft", kernels::Preset::kDefault);
}
void BM_GoldenStencilDefault(benchmark::State& state) {
  run_golden_benchmark(state, "stencil2d", kernels::Preset::kDefault);
}
void BM_GoldenCgPaper(benchmark::State& state) {
  run_golden_benchmark(state, "cg", kernels::Preset::kPaper);
}
void BM_GoldenLuPaper(benchmark::State& state) {
  run_golden_benchmark(state, "lu", kernels::Preset::kPaper);
}
void BM_GoldenFftPaper(benchmark::State& state) {
  run_golden_benchmark(state, "fft", kernels::Preset::kPaper);
}

BENCHMARK(BM_GoldenCgDefault);
BENCHMARK(BM_GoldenLuDefault);
BENCHMARK(BM_GoldenFftDefault);
BENCHMARK(BM_GoldenStencilDefault);
BENCHMARK(BM_GoldenCgPaper);
BENCHMARK(BM_GoldenLuPaper);
BENCHMARK(BM_GoldenFftPaper);

}  // namespace
