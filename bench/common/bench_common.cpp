#include "common/bench_common.h"

#include <cstdio>

namespace ftb::bench {

namespace {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> parts;
  std::string current;
  for (char ch : text) {
    if (ch == ',') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else {
      current += ch;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

}  // namespace

BenchContext BenchContext::from_cli(const util::Cli& cli) {
  BenchContext context;
  context.preset = kernels::preset_from_string(cli.get("preset", "default"));
  context.kernel_names = split_csv(cli.get("kernels", "cg,lu,fft"));
  context.trials = static_cast<std::size_t>(cli.get_int("trials", 3));
  context.seed = static_cast<std::uint64_t>(cli.get_int("seed", 20210227));
  context.use_cache = !cli.get_bool("no-cache", false);
  context.emit_csv = cli.get_bool("csv", false);
  return context;
}

PreparedKernel prepare_kernel(const std::string& name,
                              kernels::Preset preset) {
  PreparedKernel kernel;
  kernel.name_ = name;
  kernel.program = kernels::make_program(name, preset);
  kernel.golden = fi::run_golden(*kernel.program);
  return kernel;
}

std::vector<PreparedKernel> prepare_kernels(const BenchContext& context) {
  std::vector<PreparedKernel> kernels;
  kernels.reserve(context.kernel_names.size());
  for (const std::string& name : context.kernel_names) {
    kernels.push_back(prepare_kernel(name, context.preset));
  }
  return kernels;
}

campaign::GroundTruth ground_truth_for(const PreparedKernel& kernel,
                                       const BenchContext& context,
                                       util::ThreadPool& pool) {
  return campaign::GroundTruth::compute(*kernel.program, kernel.golden, pool,
                                        context.use_cache);
}

void print_banner(const std::string& artefact, const std::string& description,
                  const BenchContext& context) {
  std::printf("=== %s ===\n%s\n", artefact.c_str(), description.c_str());
  std::printf("preset=%s  trials=%zu  seed=%llu\n\n",
              kernels::to_string(context.preset), context.trials,
              static_cast<unsigned long long>(context.seed));
  std::fflush(stdout);
}

void print_table(const util::Table& table, const BenchContext& context,
                 const std::string& title) {
  std::fputs(table.render(title).c_str(), stdout);
  std::fputs("\n", stdout);
  if (context.emit_csv) {
    std::fputs(table.to_csv().c_str(), stdout);
    std::fputs("\n", stdout);
  }
  std::fflush(stdout);
}

}  // namespace ftb::bench
