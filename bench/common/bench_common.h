// Shared harness for the experiment-regeneration binaries: kernel
// selection, preset handling, golden-run + ground-truth acquisition (with
// the on-disk cache), and consistent headers so all bench output reads the
// same way.
//
// Every bench accepts:
//   --preset tiny|default|paper   problem sizes (default: "default")
//   --kernels cg,lu,fft           comma list (default: the paper's three)
//   --trials N                    trials for mean +- stddev tables
//   --seed S                      base RNG seed
//   --no-cache                    ignore / don't write the ground-truth cache
//   --csv                         also emit CSV after each table
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "campaign/ground_truth.h"
#include "fi/executor.h"
#include "fi/program.h"
#include "kernels/registry.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace ftb::bench {

struct BenchContext {
  kernels::Preset preset = kernels::Preset::kDefault;
  std::vector<std::string> kernel_names;
  std::size_t trials = 3;
  std::uint64_t seed = 20210227;  // PPoPP'21 started 2021-02-27
  bool use_cache = true;
  bool emit_csv = false;

  static BenchContext from_cli(const util::Cli& cli);
};

/// A kernel prepared for experiments: program + golden run.
struct PreparedKernel {
  fi::ProgramPtr program;
  fi::GoldenRun golden;

  const std::string& name() const { return name_; }
  std::string name_;
};

PreparedKernel prepare_kernel(const std::string& name, kernels::Preset preset);

std::vector<PreparedKernel> prepare_kernels(const BenchContext& context);

/// Ground truth for a prepared kernel, honouring the cache flag.
campaign::GroundTruth ground_truth_for(const PreparedKernel& kernel,
                                       const BenchContext& context,
                                       util::ThreadPool& pool);

/// Prints the standard bench banner (what paper artefact this regenerates).
void print_banner(const std::string& artefact, const std::string& description,
                  const BenchContext& context);

/// Prints a table and, if requested, its CSV form.
void print_table(const util::Table& table, const BenchContext& context,
                 const std::string& title);

}  // namespace ftb::bench
