// Ablation: sensitivity to the user tolerance T.
//
// The paper defines Masked as "within an acceptable tolerance level defined
// by the domain user" -- T is a free parameter, and every SDC ratio in the
// evaluation depends on it.  This bench sweeps the relative tolerance over
// six decades and reports, per kernel:
//
//   * the golden SDC ratio (monotonically falling in T by construction),
//   * the crash ratio (T-independent: crashes do not consult T),
//   * the 1%-sampling boundary's precision/recall against each T's ground
//     truth -- showing the *method* is robust even though the *numbers*
//     move, which is why EXPERIMENTS.md matches paper shapes, not decimals.
#include "common/bench_common.h"

#include <memory>

#include "boundary/metrics.h"
#include "campaign/ground_truth.h"
#include "campaign/inference.h"
#include "kernels/cg.h"
#include "kernels/fft.h"
#include "kernels/lu.h"
#include "util/stats.h"

namespace {

using namespace ftb;

fi::ProgramPtr make_with_rtol(const std::string& name, double rtol) {
  // Rebuild the default-preset config with an overridden tolerance; the
  // config key changes with rtol, so ground-truth caches stay distinct.
  if (name == "cg") {
    kernels::CgConfig config;
    config.rtol = rtol;
    return std::make_unique<kernels::CgProgram>(config);
  }
  if (name == "lu") {
    kernels::LuConfig config;
    config.rtol = rtol;
    return std::make_unique<kernels::LuProgram>(config);
  }
  if (name == "fft") {
    kernels::FftConfig config;
    config.rtol = rtol;
    return std::make_unique<kernels::FftProgram>(config);
  }
  throw std::invalid_argument("tolerance sweep supports cg, lu, fft");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchContext context = bench::BenchContext::from_cli(cli);
  bench::print_banner(
      "Ablation -- user-tolerance sweep",
      "Golden SDC ratio and boundary quality as the acceptance tolerance T\n"
      "varies over six decades (T is the domain user's knob).",
      context);

  util::ThreadPool& pool = util::default_pool();

  for (const std::string& name : context.kernel_names) {
    if (name != "cg" && name != "lu" && name != "fft") continue;
    util::Table table({"rtol", "golden SDC", "crash", "precision(1%)",
                       "recall(1%)"});
    for (const double rtol : {1e-9, 1e-7, 1e-5, 1e-3}) {
      const fi::ProgramPtr program = make_with_rtol(name, rtol);
      const fi::GoldenRun golden = fi::run_golden(*program);
      const campaign::GroundTruth truth = campaign::GroundTruth::compute(
          *program, golden, pool, context.use_cache);

      campaign::InferenceOptions options;
      options.sample_fraction = 0.01;
      options.filter = true;
      options.seed = context.seed;
      const campaign::InferenceResult inference =
          campaign::infer_uniform(*program, golden, options, pool);
      const auto metrics = boundary::evaluate_boundary(
          inference.boundary, golden.trace, truth.outcomes(),
          inference.sampled_ids);

      const campaign::OutcomeCounts counts = truth.counts();
      table.add_row({util::format("%.0e", rtol),
                     util::percent(truth.overall_sdc_ratio()),
                     util::percent(static_cast<double>(counts.crash) /
                                   static_cast<double>(counts.total())),
                     util::percent(metrics.precision()),
                     util::percent(metrics.recall())});
    }
    std::printf("--- %s ---\n", name.c_str());
    bench::print_table(table, context, "");
  }
  return 0;
}
