// Regenerates paper Table 2: prediction precision, recall, and uncertainty
// (+- stddev over trials) for the boundary inferred with 1% uniform
// sampling.
//
// Expected shape (paper): precision ~99-100% for every benchmark, recall
// well below precision (77-94%), uncertainty ~= precision -- the metric the
// user can compute without ground truth really does track the true
// precision.
#include "common/bench_common.h"

#include <vector>

#include "boundary/metrics.h"
#include "campaign/inference.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace ftb;
  const util::Cli cli(argc, argv);
  bench::BenchContext context = bench::BenchContext::from_cli(cli);
  if (!cli.has("trials")) context.trials = 10;  // the paper uses 10
  const double fraction = cli.get_double("fraction", 0.01);
  bench::print_banner(
      "Table 2 -- inference precision / recall / uncertainty (1% sampling)",
      "Boundary inferred from uniform samples; metrics vs exhaustive ground\n"
      "truth; uncertainty is the self-verified precision on the samples.",
      context);

  util::ThreadPool& pool = util::default_pool();
  util::Table table({"Name", "Precision", "Recall", "Uncertainty"});

  for (const std::string& name : context.kernel_names) {
    const bench::PreparedKernel kernel =
        bench::prepare_kernel(name, context.preset);
    const campaign::GroundTruth truth =
        bench::ground_truth_for(kernel, context, pool);

    std::vector<double> precision, recall, uncertainty;
    for (std::size_t trial = 0; trial < context.trials; ++trial) {
      campaign::InferenceOptions options;
      options.sample_fraction = fraction;
      options.seed = context.seed + trial;
      options.filter = true;
      const campaign::InferenceResult result = campaign::infer_uniform(
          *kernel.program, kernel.golden, options, pool);
      const auto metrics = boundary::evaluate_boundary(
          result.boundary, kernel.golden.trace, truth.outcomes(),
          result.sampled_ids);
      precision.push_back(metrics.precision());
      recall.push_back(metrics.recall());
      uncertainty.push_back(metrics.uncertainty());
    }
    table.add_row({name, util::format_percent_pm(util::mean_std(precision)),
                   util::format_percent_pm(util::mean_std(recall)),
                   util::format_percent_pm(util::mean_std(uncertainty))});
  }

  bench::print_table(table, context, "Table 2");
  return 0;
}
