// Adaptive sampling explorer: watch the Section 3.4 progressive sampler
// work round by round -- pool shrinkage from boundary pruning, the 1/S_i
// bias redirecting samples to information-poor sites, and the 95%-SDC stop
// criterion firing.
//
//   $ example_adaptive_explorer [--kernel fft] [--round-fraction 0.001]
//                               [--stop 0.95]
#include <cstdio>

#include "boundary/predictor.h"
#include "campaign/adaptive.h"
#include "fi/executor.h"
#include "kernels/registry.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace ftb;

  util::Cli cli(argc, argv);
  if (cli.has("help")) {
    cli.describe("kernel", "cg | lu | fft | stencil2d | daxpy | matvec");
    cli.describe("round-fraction", "share of the space sampled per round");
    cli.describe("stop", "stop when a round's SDC share reaches this");
    cli.describe("seed", "RNG seed");
    cli.print_help("Trace the progressive adaptive sampler round by round.");
    return 0;
  }
  const std::string kernel = cli.get("kernel", "fft");

  const fi::ProgramPtr program =
      kernels::make_program(kernel, kernels::Preset::kDefault);
  const fi::GoldenRun golden = fi::run_golden(*program);

  campaign::AdaptiveOptions options;
  options.round_fraction = cli.get_double("round-fraction", 0.001);
  options.stop_sdc_fraction = cli.get_double("stop", 0.95);
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  std::printf("kernel: %s  (%llu dynamic instructions, %llu experiments)\n",
              program->name().c_str(),
              static_cast<unsigned long long>(golden.dynamic_instructions()),
              static_cast<unsigned long long>(golden.sample_space_size()));
  std::printf("round size: %.3f%% of the space; stop when masked share of a "
              "round falls to %.0f%%\n\n",
              100.0 * options.round_fraction,
              100.0 * (1.0 - options.stop_sdc_fraction));

  const campaign::AdaptiveResult result = campaign::infer_adaptive(
      *program, golden, options, util::default_pool());

  util::Table table({"round", "pool before", "samples", "masked", "sdc",
                     "crash", "masked share"});
  for (std::size_t r = 0; r < result.rounds.size(); ++r) {
    const campaign::AdaptiveRound& round = result.rounds[r];
    const double masked_share =
        round.counts.total()
            ? static_cast<double>(round.counts.masked) /
                  static_cast<double>(round.counts.total())
            : 0.0;
    table.add_row(
        {util::format("%zu", r),
         util::format("%llu",
                      static_cast<unsigned long long>(round.candidates_before)),
         util::format("%llu",
                      static_cast<unsigned long long>(round.counts.total())),
         util::format("%llu",
                      static_cast<unsigned long long>(round.counts.masked)),
         util::format("%llu",
                      static_cast<unsigned long long>(round.counts.sdc)),
         util::format("%llu",
                      static_cast<unsigned long long>(round.counts.crash)),
         util::percent(masked_share)});
  }
  std::fputs(table.render("progressive rounds").c_str(), stdout);

  std::printf("\ntotal samples: %zu (%.2f%% of the space) over %zu rounds\n",
              result.sampled_ids.size(), 100.0 * result.sample_fraction(),
              result.rounds.size());
  std::printf("predicted overall SDC ratio: %.2f%%\n",
              100.0 * boundary::predicted_overall_sdc(result.boundary,
                                                      golden.trace));
  std::printf("informed sites: %zu of %zu\n",
              result.boundary.informed_sites(), result.boundary.sites());
  std::printf(
      "\nreading the table: the pool shrinks every round as the boundary\n"
      "filters out experiments it already predicts masked; the masked share\n"
      "of fresh samples falls until the stop criterion fires.\n");
  return 0;
}
