// Bringing your own kernel: how a downstream user instruments their
// computation for fault-tolerance analysis.  The contract is small --
// subclass fi::Program, route every stored floating-point data element
// through Tracer::step(), keep control flow independent of the data -- and
// the whole toolbox (campaigns, boundary inference, adaptive sampling)
// works unchanged.
//
// The kernel here is a damped pendulum integrated with explicit Euler:
// small physics state, long dependency chain, intuitive resiliency
// structure (early-state errors decay with the damping, late errors
// persist).
//
//   $ example_custom_kernel [--steps 400] [--fraction 0.05]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "boundary/exhaustive.h"
#include "boundary/predictor.h"
#include "campaign/ground_truth.h"
#include "campaign/inference.h"
#include "fi/executor.h"
#include "fi/program.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace ftb;

/// theta'' = -(g/L) sin(theta) - c * theta', explicit Euler, fixed steps.
class PendulumProgram final : public fi::Program {
 public:
  explicit PendulumProgram(std::size_t steps) : steps_(steps) {}

  std::string name() const override { return "pendulum"; }
  std::string config_key() const override {
    return "pendulum:steps=" + std::to_string(steps_);
  }
  fi::OutputComparator comparator() const override { return {1e-9, 1e-6}; }

  std::vector<double> run(fi::Tracer& t) const override {
    // Instrumented state initialisation: these stores are injection sites.
    double theta = t.step(0.75);   // initial angle (rad)
    double omega = t.step(0.0);    // initial angular velocity
    const double dt = t.step(0.01);
    const double damping = t.step(0.9);
    const double gravity_over_length = t.step(9.81 / 1.0);

    for (std::size_t i = 0; i < steps_; ++i) {
      const double acceleration =
          -gravity_over_length * std::sin(theta) - damping * omega;
      omega = t.step(omega + dt * acceleration);
      theta = t.step(theta + dt * omega);
    }
    return {theta, omega};
  }

 private:
  std::size_t steps_;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (cli.has("help")) {
    cli.describe("steps", "Euler integration steps");
    cli.describe("fraction", "sampling rate for the inferred boundary");
    cli.print_help("Analyse a user-written kernel with the ftb toolbox.");
    return 0;
  }
  const auto steps = static_cast<std::size_t>(cli.get_int("steps", 400));
  const double fraction = cli.get_double("fraction", 0.05);

  const PendulumProgram program(steps);
  const fi::GoldenRun golden = fi::run_golden(program);
  util::ThreadPool& pool = util::default_pool();

  std::printf("custom kernel '%s': %llu dynamic instructions, final state "
              "theta=%.6f omega=%.6f\n",
              program.name().c_str(),
              static_cast<unsigned long long>(golden.dynamic_instructions()),
              golden.output[0], golden.output[1]);

  // The pendulum is small enough to afford the exhaustive ground truth, so
  // we can show inference quality directly.
  const campaign::GroundTruth truth =
      campaign::GroundTruth::compute(program, golden, pool,
                                     /*use_cache=*/false);

  campaign::InferenceOptions options;
  options.sample_fraction = fraction;
  options.filter = true;
  const campaign::InferenceResult inference =
      campaign::infer_uniform(program, golden, options, pool);

  const double predicted =
      boundary::predicted_overall_sdc(inference.boundary, golden.trace);
  const util::Confusion self = campaign::confusion_on_records(
      inference.boundary, golden.trace, inference.records);

  std::printf("golden SDC ratio    : %.2f%% (exhaustive campaign, %llu runs)\n",
              100.0 * truth.overall_sdc_ratio(),
              static_cast<unsigned long long>(truth.experiments()));
  std::printf("predicted SDC ratio : %.2f%% (from %zu samples = %.1f%%)\n",
              100.0 * predicted, inference.sampled_ids.size(),
              100.0 * fraction);
  std::printf("self-verified uncertainty: %.2f%%\n", 100.0 * self.precision());

  // Show the damping intuition through the *fault tolerance thresholds*:
  // an error injected early has hundreds of damped steps to decay, so early
  // sites tolerate much larger perturbations than late ones (the SDC ratio
  // itself stays flat -- exponent-bit flips that kick the pendulum into a
  // different equilibrium basin are fatal in every quarter).
  const boundary::FaultToleranceBoundary exact =
      boundary::exhaustive_boundary(truth.outcomes(), golden.trace);
  util::Table table(
      {"execution quarter", "median tolerance threshold", "true SDC ratio"});
  const std::vector<double> profile = truth.sdc_profile();
  const std::size_t quarter = golden.trace.size() / 4;
  for (int q = 0; q < 4; ++q) {
    const std::size_t begin = q * quarter;
    const std::size_t end =
        q == 3 ? golden.trace.size() : begin + quarter;
    std::vector<double> thresholds;
    double sdc_sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      thresholds.push_back(exact.threshold(i));
      sdc_sum += profile[i];
    }
    std::nth_element(thresholds.begin(),
                     thresholds.begin() + thresholds.size() / 2,
                     thresholds.end());
    table.add_row(
        {util::format("Q%d", q + 1),
         util::format("%.3g", thresholds[thresholds.size() / 2]),
         util::percent(sdc_sum / static_cast<double>(end - begin))});
  }
  std::fputs(
      table
          .render("\ndamping in action: early errors have time to decay, so "
                  "early sites\ntolerate visibly larger perturbations")
          .c_str(),
      stdout);
  return 0;
}
