// Propagation viewer: visualise how one injected error travels through the
// computation -- the SpotSDC-style source-level view (the paper's ref [20])
// that motivated the whole error-propagation methodology.  For a chosen
// (instruction, bit) experiment the viewer prints the propagated error
// magnitude over dynamic instructions as a log-scale ASCII plot, annotated
// with the kernel's phases, plus the experiment's outcome.
//
//   $ example_propagation_viewer [--kernel cg] [--site 2000] [--bit 40]
#include <cmath>
#include <cstdio>
#include <vector>

#include "fi/executor.h"
#include "fi/phase_map.h"
#include "kernels/registry.h"
#include "util/ascii_plot.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace ftb;

  util::Cli cli(argc, argv);
  if (cli.has("help")) {
    cli.describe("kernel", "cg | lu | fft | stencil2d | gemm | jacobi | ...");
    cli.describe("site", "dynamic instruction to corrupt (default: middle)");
    cli.describe("bit", "bit position to flip, 0..63 (default 40)");
    cli.print_help("Visualise the error propagation of one bit flip.");
    return 0;
  }
  const std::string kernel = cli.get("kernel", "cg");
  const int bit = static_cast<int>(cli.get_int("bit", 40));

  const fi::ProgramPtr program =
      kernels::make_program(kernel, kernels::Preset::kDefault);
  const fi::GoldenRun golden = fi::run_golden(*program);
  const std::uint64_t site = static_cast<std::uint64_t>(cli.get_int(
      "site", static_cast<std::int64_t>(golden.trace.size() / 2)));
  if (site >= golden.trace.size() || bit < 0 || bit >= 64) {
    std::fprintf(stderr, "site/bit out of range (trace has %zu sites)\n",
                 golden.trace.size());
    return 1;
  }

  std::vector<double> diffs(golden.trace.size(), 0.0);
  const fi::ExperimentResult result = fi::run_injected_compare(
      *program, golden, fi::Injection::bit_flip(site, bit), diffs);

  std::printf("kernel   : %s (%zu dynamic instructions)\n",
              program->name().c_str(), golden.trace.size());
  std::printf("injection: instruction %llu, bit %d (golden value %.6g)\n",
              static_cast<unsigned long long>(site), bit, golden.trace[site]);
  std::printf("outcome  : %s  (injected error %.3g, output L-inf error %.3g,"
              " tolerance %.3g)\n\n",
              fi::to_string(result.outcome), result.injected_error,
              result.output_error, golden.tolerance);

  // Log-magnitude series: log10(|error|) with untouched sites at the floor.
  constexpr double kFloor = -18.0;
  std::vector<double> log_error(diffs.size(), kFloor);
  std::uint64_t touched = 0;
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    if (diffs[i] > 0.0 && std::isfinite(diffs[i])) {
      log_error[i] = std::max(kFloor, std::log10(diffs[i]));
      ++touched;
    }
  }
  std::printf("error propagated to %llu of %zu dynamic instructions "
              "(%.1f%%)\n\n",
              static_cast<unsigned long long>(touched), diffs.size(),
              100.0 * static_cast<double>(touched) /
                  static_cast<double>(diffs.size()));

  util::PlotOptions options;
  options.width = 100;
  options.height = 20;
  options.x_label = "dynamic instruction";
  options.y_label = "log10 |error|";
  const util::Series series[] = {
      {"log10 propagated |error| (floor = untouched)", log_error, '*'}};
  std::fputs(util::plot(series, options).c_str(), stdout);

  // Per-phase summary: peak propagated error inside each phase.
  const fi::PhaseMap phases(golden.phases, golden.trace.size());
  util::Table table({"phase", "instructions", "peak |error|", "touched"});
  for (const auto& segment : phases.segments()) {
    double peak = 0.0;
    std::uint64_t phase_touched = 0;
    for (std::uint64_t i = segment.begin; i < segment.end; ++i) {
      peak = std::fmax(peak, diffs[i]);
      if (diffs[i] > 0.0) ++phase_touched;
    }
    table.add_row(
        {segment.name,
         util::format("[%llu, %llu)",
                      static_cast<unsigned long long>(segment.begin),
                      static_cast<unsigned long long>(segment.end)),
         util::format("%.3g", peak),
         util::percent(static_cast<double>(phase_touched) /
                       static_cast<double>(segment.size()))});
  }
  std::fputs(table.render("\npropagation by phase").c_str(), stdout);
  return 0;
}
