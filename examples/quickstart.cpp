// Quickstart: build a fault tolerance boundary for a small kernel with 1%
// sampling and print what it tells you about the program's resiliency.
//
//   $ example_quickstart [--kernel cg] [--fraction 0.01] [--seed 1]
//
// Walks through the library's core loop:
//   1. run the program fault-free (golden run),
//   2. sample 1% of all (dynamic instruction, bit) fault-injection
//      experiments and run them with error-propagation capture,
//   3. aggregate masked propagation data into the boundary (Algorithm 1),
//   4. predict the per-instruction SDC ratio and self-verify via the
//      uncertainty metric -- no exhaustive campaign required.
#include <cstdio>

#include "boundary/predictor.h"
#include "campaign/inference.h"
#include "fi/executor.h"
#include "kernels/registry.h"
#include "util/cli.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace ftb;

  util::Cli cli(argc, argv);
  if (cli.has("help")) {
    cli.describe("kernel", "cg | lu | fft | stencil2d | daxpy | matvec");
    cli.describe("fraction", "sample fraction of the experiment space");
    cli.describe("seed", "RNG seed");
    cli.print_help("Build and inspect a fault tolerance boundary.");
    return 0;
  }

  const std::string kernel = cli.get("kernel", "cg");
  const double fraction = cli.get_double("fraction", 0.01);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // 1. Golden run.
  const fi::ProgramPtr program =
      kernels::make_program(kernel, kernels::Preset::kDefault);
  const fi::GoldenRun golden = fi::run_golden(*program);
  std::printf("kernel            : %s\n", program->name().c_str());
  std::printf("dynamic instrs    : %llu\n",
              static_cast<unsigned long long>(golden.dynamic_instructions()));
  std::printf("experiment space  : %llu (64 bit flips per instruction)\n",
              static_cast<unsigned long long>(golden.sample_space_size()));

  // 2-3. Sample, run, and build the boundary (with the Section 3.5 filter).
  campaign::InferenceOptions options;
  options.sample_fraction = fraction;
  options.seed = seed;
  options.filter = true;
  const campaign::InferenceResult inference =
      campaign::infer_uniform(*program, golden, options, util::default_pool());

  std::printf("samples run       : %zu (%.3f%% of the space)\n",
              inference.sampled_ids.size(),
              100.0 * static_cast<double>(inference.sampled_ids.size()) /
                  static_cast<double>(golden.sample_space_size()));
  std::printf("  masked %llu / sdc %llu / crash %llu\n",
              static_cast<unsigned long long>(inference.counts.masked),
              static_cast<unsigned long long>(inference.counts.sdc),
              static_cast<unsigned long long>(inference.counts.crash));

  // 4. What does the boundary say?
  const double predicted_sdc = boundary::predicted_overall_sdc(
      inference.boundary, golden.trace);
  const util::Confusion self_check = campaign::confusion_on_records(
      inference.boundary, golden.trace, inference.records);

  std::printf("informed sites    : %zu of %zu\n",
              inference.boundary.informed_sites(),
              inference.boundary.sites());
  std::printf("predicted SDC     : %.2f%% of all experiments\n",
              100.0 * predicted_sdc);
  std::printf("uncertainty       : %.2f%% (precision on the samples; the\n"
              "                    self-verification of paper Section 3.6)\n",
              100.0 * self_check.precision());

  // Show the five most vulnerable instructions the boundary identifies.
  std::printf("\nmost vulnerable dynamic instructions (predicted):\n");
  std::vector<double> profile =
      boundary::predicted_sdc_profile(inference.boundary, golden.trace);
  for (int rank = 0; rank < 5; ++rank) {
    std::size_t worst = 0;
    double worst_ratio = -1.0;
    for (std::size_t i = 0; i < profile.size(); ++i) {
      if (profile[i] > worst_ratio) {
        worst_ratio = profile[i];
        worst = i;
      }
    }
    if (worst_ratio < 0.0) break;
    std::printf("  #%d  instruction %zu  predicted SDC ratio %.1f%%\n",
                rank + 1, worst, 100.0 * worst_ratio);
    profile[worst] = -1.0;  // exclude from the next rank
  }
  return 0;
}
